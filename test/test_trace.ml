(* Tests for Kona_trace: access events, windowing, amplification, footprint. *)

open Kona_trace
module Cdf = Kona_util.Cdf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Access *)

let test_access_lines () =
  let a = Access.read ~addr:60 ~len:8 in
  let lines = ref [] in
  Access.iter_lines a (fun l -> lines := l :: !lines);
  Alcotest.(check (list int)) "spans two lines" [ 0; 1 ] (List.rev !lines);
  let b = Access.write ~addr:64 ~len:64 in
  let lines = ref [] in
  Access.iter_lines b (fun l -> lines := l :: !lines);
  Alcotest.(check (list int)) "exactly one line" [ 1 ] (List.rev !lines)

let test_access_pages () =
  let a = Access.write ~addr:4090 ~len:10 in
  let pages = ref [] in
  Access.iter_pages a (fun p -> pages := p :: !pages);
  Alcotest.(check (list int)) "spans two pages" [ 0; 1 ] (List.rev !pages)

let test_access_split () =
  let a = Access.write ~addr:100 ~len:100 in
  let parts = Access.split_at_lines a in
  check_int "pieces" 3 (List.length parts);
  let total = List.fold_left (fun acc (p : Access.t) -> acc + p.len) 0 parts in
  check_int "length preserved" 100 total;
  List.iter
    (fun (p : Access.t) ->
      check_int "each piece within one line"
        (Kona_util.Units.line_of_addr p.addr)
        (Kona_util.Units.line_of_addr (Access.end_addr p - 1)))
    parts

let prop_split_covers =
  QCheck.Test.make ~name:"split_at_lines covers the exact byte range" ~count:300
    QCheck.(pair (int_bound 10_000) (int_range 1 500))
    (fun (addr, len) ->
      let a = Access.write ~addr ~len in
      let parts = Access.split_at_lines a in
      let rec contiguous cursor = function
        | [] -> cursor = Access.end_addr a
        | (p : Access.t) :: rest -> p.addr = cursor && contiguous (Access.end_addr p) rest
      in
      contiguous addr parts)

let test_tap () =
  let n1, get1 = Access.Tap.counting () in
  let n2, get2 = Access.Tap.counting () in
  let sink = Access.Tap.tee [ n1; Access.Tap.filter Access.is_write n2 ] in
  sink (Access.read ~addr:0 ~len:8);
  sink (Access.write ~addr:8 ~len:8);
  sink (Access.write ~addr:16 ~len:8);
  check_int "tee sees all" 3 (get1 ());
  check_int "filter sees writes" 2 (get2 ())

(* ------------------------------------------------------------------ *)
(* Window *)

let test_window_boundaries () =
  let boundaries = ref [] in
  let w =
    Window.create ~quantum:3 ~inner:Access.Tap.ignore ~on_boundary:(fun ~window ->
        boundaries := window :: !boundaries)
  in
  for _ = 1 to 7 do
    Window.sink w (Access.read ~addr:0 ~len:1)
  done;
  Alcotest.(check (list int)) "two full windows" [ 1; 0 ] !boundaries;
  Window.flush w;
  Alcotest.(check (list int)) "partial window flushed" [ 2; 1; 0 ] !boundaries;
  Window.flush w;
  Alcotest.(check (list int)) "empty flush is no-op" [ 2; 1; 0 ] !boundaries;
  check_int "windows_closed" 3 (Window.windows_closed w)

(* ------------------------------------------------------------------ *)
(* Amplification *)

let page = Kona_util.Units.page_size

let amp_of accesses =
  let t = Amplification.create () in
  List.iter (Amplification.sink t) accesses;
  Amplification.close_window t ~window:0;
  match Amplification.windows t with [ w ] -> w | _ -> assert false

let test_amp_single_small_write () =
  (* Write 1 KB within one page: paper's worked example gives 4x at 4KB. *)
  let w = amp_of [ Access.write ~addr:(page * 7) ~len:1024 ] in
  check_int "written" 1024 w.Amplification.written_bytes;
  Alcotest.(check (float 1e-9)) "4KB amp = 4" 4.0 (Amplification.amp_page w);
  Alcotest.(check (float 1e-9)) "CL amp = 1" 1.0 (Amplification.amp_line w);
  Alcotest.(check (float 1e-9)) "2MB amp" (2097152. /. 1024.) (Amplification.amp_huge w)

let test_amp_dedup_within_window () =
  (* Same byte written twice counts once. *)
  let w = amp_of [ Access.write ~addr:0 ~len:64; Access.write ~addr:0 ~len:64 ] in
  check_int "written deduped" 64 w.Amplification.written_bytes;
  Alcotest.(check (float 1e-9)) "CL amp" 1.0 (Amplification.amp_line w)

let test_amp_sub_line_write () =
  (* An 8-byte write dirties a whole cache-line: CL amp = 8. *)
  let w = amp_of [ Access.write ~addr:32 ~len:8 ] in
  Alcotest.(check (float 1e-9)) "CL amp" 8.0 (Amplification.amp_line w);
  Alcotest.(check (float 1e-9)) "4KB amp" 512.0 (Amplification.amp_page w)

let test_amp_reads_ignored () =
  let t = Amplification.create () in
  Amplification.sink t (Access.read ~addr:0 ~len:4096);
  Amplification.close_window t ~window:0;
  match Amplification.windows t with
  | [ w ] -> check_int "no dirty bytes" 0 w.Amplification.written_bytes
  | _ -> assert false

let test_amp_cross_page_write () =
  let w = amp_of [ Access.write ~addr:(page - 8) ~len:16 ] in
  check_int "written" 16 w.Amplification.written_bytes;
  Alcotest.(check (float 1e-9)) "two pages dirty" (8192. /. 16.) (Amplification.amp_page w);
  Alcotest.(check (float 1e-9)) "two lines dirty" (128. /. 16.) (Amplification.amp_line w)

let test_amp_aggregate_drop_last () =
  let t = Amplification.create () in
  Amplification.sink t (Access.write ~addr:0 ~len:4096);
  Amplification.close_window t ~window:0;
  Amplification.sink t (Access.write ~addr:page ~len:1);
  Amplification.close_window t ~window:1;
  let all = Amplification.aggregate t in
  let dropped = Amplification.aggregate ~drop_last:true t in
  check_int "all written" 4097 all.Amplification.total_written_bytes;
  check_int "dropped written" 4096 dropped.Amplification.total_written_bytes;
  Alcotest.(check (float 1e-9)) "dropped 4KB amp" 1.0 dropped.Amplification.agg_amp_page

let prop_amp_ordering =
  (* For any write set: amp_huge >= amp_page >= amp_line >= 1. *)
  QCheck.Test.make ~name:"amplification is monotone in granularity" ~count:200
    QCheck.(small_list (pair (int_bound 100_000) (int_range 1 300)))
    (fun writes ->
      writes = []
      ||
      let w = amp_of (List.map (fun (addr, len) -> Access.write ~addr ~len) writes) in
      let a_l = Amplification.amp_line w
      and a_p = Amplification.amp_page w
      and a_h = Amplification.amp_huge w in
      a_l >= 1.0 && a_p >= a_l && a_h >= a_p)

let test_amp_page_redirtied_across_windows () =
  (* The same page written in two windows is marked dirty in both: tracking
     resets per window, exactly like re-arming write protection. *)
  let t = Amplification.create () in
  Amplification.sink t (Access.write ~addr:0 ~len:64);
  Amplification.close_window t ~window:0;
  Amplification.sink t (Access.write ~addr:0 ~len:64);
  Amplification.close_window t ~window:1;
  match Amplification.windows t with
  | [ w0; w1 ] ->
      check_int "w0 dirty page bytes" 4096 w0.Amplification.dirty_page_bytes;
      check_int "w1 dirty page bytes" 4096 w1.Amplification.dirty_page_bytes
  | _ -> Alcotest.fail "expected two windows"

(* ------------------------------------------------------------------ *)
(* Footprint *)

let test_footprint_lines_cdf () =
  let t = Footprint.create () in
  (* Page 0: read 3 distinct lines. Page 1: write all 64 lines. *)
  Footprint.sink t (Access.read ~addr:0 ~len:8);
  Footprint.sink t (Access.read ~addr:128 ~len:8);
  Footprint.sink t (Access.read ~addr:256 ~len:8);
  Footprint.sink t (Access.write ~addr:page ~len:page);
  Footprint.close_window t ~window:0;
  let reads = Footprint.lines_per_page_cdf t ~kind:Access.Read in
  let writes = Footprint.lines_per_page_cdf t ~kind:Access.Write in
  check_int "one read page sample" 1 (Cdf.count reads);
  check_int "read page has 3 lines" 3 (Cdf.quantile reads 0.5);
  check_int "write page has 64 lines" 64 (Cdf.quantile writes 0.5)

let test_footprint_segments () =
  let t = Footprint.create () in
  (* Lines 0,1,2 and line 10 of page 0: segments of length 3 and 1. *)
  Footprint.sink t (Access.write ~addr:0 ~len:192);
  Footprint.sink t (Access.write ~addr:640 ~len:8);
  Footprint.close_window t ~window:0;
  let segs = Footprint.segment_length_cdf t ~kind:Access.Write in
  check_int "two segments" 2 (Cdf.count segs);
  Alcotest.(check (float 1e-9)) "mean length 2" 2.0 (Cdf.mean segs)

let test_footprint_window_isolation () =
  let t = Footprint.create () in
  Footprint.sink t (Access.write ~addr:0 ~len:8);
  Footprint.close_window t ~window:0;
  Footprint.sink t (Access.write ~addr:64 ~len:8);
  Footprint.close_window t ~window:1;
  let writes = Footprint.lines_per_page_cdf t ~kind:Access.Write in
  (* Two separate (window,page) samples of 1 line each, not one of 2. *)
  check_int "two samples" 2 (Cdf.count writes);
  check_int "each 1 line" 1 (Cdf.quantile writes 1.0)

(* ------------------------------------------------------------------ *)
(* Trace_file *)

let tmp_trace () = Filename.temp_file "kona" ".trace"

let test_trace_file_roundtrip () =
  let path = tmp_trace () in
  let sink, close = Trace_file.writer ~path in
  let events =
    [ Access.read ~addr:0 ~len:8; Access.write ~addr:4096 ~len:64;
      Access.read ~addr:123456 ~len:3 ]
  in
  List.iter sink events;
  check_int "written count" 3 (close ());
  check_int "count" 3 (Trace_file.count ~path);
  let replayed = ref [] in
  check_int "replayed count" 3 (Trace_file.iter ~path (fun e -> replayed := e :: !replayed));
  check_bool "identical stream" true (List.rev !replayed = events);
  Sys.remove path

let test_trace_file_rejects_garbage () =
  let path = tmp_trace () in
  let oc = open_out path in
  output_string oc "not a trace at all....";
  close_out oc;
  check_bool "bad magic" true
    (try
       ignore (Trace_file.count ~path);
       false
     with Failure _ -> true);
  Sys.remove path

let prop_trace_file_roundtrip =
  QCheck.Test.make ~name:"trace file roundtrips any access stream" ~count:50
    QCheck.(small_list (pair (int_bound 1_000_000) (pair (int_range 1 5000) bool)))
    (fun specs ->
      let events =
        List.map
          (fun (addr, (len, w)) ->
            if w then Access.write ~addr ~len else Access.read ~addr ~len)
          specs
      in
      let path = tmp_trace () in
      let sink, close = Trace_file.writer ~path in
      List.iter sink events;
      ignore (close () : int);
      let replayed = ref [] in
      ignore (Trace_file.iter ~path (fun e -> replayed := e :: !replayed) : int);
      Sys.remove path;
      List.rev !replayed = events)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_trace"
    [
      ( "access",
        [
          Alcotest.test_case "iter_lines" `Quick test_access_lines;
          Alcotest.test_case "iter_pages" `Quick test_access_pages;
          Alcotest.test_case "split_at_lines" `Quick test_access_split;
          Alcotest.test_case "taps" `Quick test_tap;
        ] );
      qsuite "access-props" [ prop_split_covers ];
      ("window", [ Alcotest.test_case "boundaries" `Quick test_window_boundaries ]);
      ( "amplification",
        [
          Alcotest.test_case "paper example (1KB in a page)" `Quick
            test_amp_single_small_write;
          Alcotest.test_case "dedup within window" `Quick test_amp_dedup_within_window;
          Alcotest.test_case "sub-line write" `Quick test_amp_sub_line_write;
          Alcotest.test_case "reads ignored" `Quick test_amp_reads_ignored;
          Alcotest.test_case "cross-page write" `Quick test_amp_cross_page_write;
          Alcotest.test_case "aggregate drop_last" `Quick test_amp_aggregate_drop_last;
          Alcotest.test_case "re-dirty across windows" `Quick
            test_amp_page_redirtied_across_windows;
        ] );
      qsuite "amplification-props" [ prop_amp_ordering ];
      ( "footprint",
        [
          Alcotest.test_case "lines per page CDF" `Quick test_footprint_lines_cdf;
          Alcotest.test_case "segments" `Quick test_footprint_segments;
          Alcotest.test_case "window isolation" `Quick test_footprint_window_isolation;
        ] );
      ( "trace_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_file_rejects_garbage;
        ] );
      qsuite "trace-file-props" [ prop_trace_file_roundtrip ];
    ]
