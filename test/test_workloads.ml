(* Tests for Kona_workloads: the instrumented heap and each Table 2
   application's correctness + instrumentation coverage. *)

open Kona_workloads
module Access = Kona_trace.Access
module Rng = Kona_util.Rng
module Units = Kona_util.Units

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let quiet_heap ?capacity () = Heap.create ?capacity ~sink:Access.Tap.ignore ()

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_rw_roundtrip () =
  let h = quiet_heap () in
  let a = Heap.alloc h 64 in
  Heap.write_u64 h a 0x1122334455;
  check_int "u64" 0x1122334455 (Heap.read_u64 h a);
  Heap.write_u32 h (a + 8) 0xdeadbeef;
  check_int "u32" 0xdeadbeef (Heap.read_u32 h (a + 8));
  Heap.write_u8 h (a + 12) 200;
  check_int "u8" 200 (Heap.read_u8 h (a + 12));
  Heap.write_f64 h (a + 16) 3.25;
  Alcotest.(check (float 0.)) "f64" 3.25 (Heap.read_f64 h (a + 16));
  Heap.write_string h (a + 24) "hello";
  Alcotest.(check string) "bytes" "hello" (Heap.read_bytes h (a + 24) 5);
  check_bool "memcmp equal" true (Heap.memcmp h (a + 24) "hello");
  check_bool "memcmp differs" false (Heap.memcmp h (a + 24) "hellx")

let test_heap_alloc_no_overlap () =
  let h = quiet_heap () in
  let blocks = List.init 100 (fun i -> (Heap.alloc h (8 + (i mod 40)), 8 + (i mod 40))) in
  let sorted = List.sort compare blocks in
  let rec no_overlap = function
    | (a1, l1) :: ((a2, _) :: _ as rest) ->
        check_bool "disjoint" true (a1 + l1 <= a2);
        no_overlap rest
    | _ -> ()
  in
  no_overlap sorted

let test_heap_free_reuse () =
  let h = quiet_heap () in
  let a = Heap.alloc h 128 in
  Heap.free h ~addr:a ~len:128;
  let b = Heap.alloc h 128 in
  check_int "exact-size block reused" a b

let test_heap_events () =
  let events = ref [] in
  let h = Heap.create ~sink:(fun e -> events := e :: !events) () in
  let a = Heap.alloc h 16 in
  Heap.write_u64 h a 1;
  ignore (Heap.read_u64 h a);
  Heap.write_string h (a + 8) "xy";
  (match List.rev !events with
  | [ w1; r1; w2 ] ->
      check_bool "w1 is write" true (Access.is_write w1);
      check_int "w1 len" 8 w1.Access.len;
      check_int "w1 addr" a w1.Access.addr;
      check_bool "r1 is read" false (Access.is_write r1);
      check_int "w2 len" 2 w2.Access.len
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
  (* instrumentation never lies about the heap contents *)
  check_int "backing store updated" 1 (Heap.peek_u64 h a)

let test_heap_bounds () =
  let h = quiet_heap ~capacity:(Units.mib 1) () in
  Alcotest.check_raises "below base"
    (Invalid_argument
       (Printf.sprintf "Heap: access [0x10,+8) outside arena [%#x,%#x)" 4096
          (Units.mib 1))) (fun () -> ignore (Heap.read_u64 h 16));
  check_bool "oom raised" true
    (try
       ignore (Heap.alloc h (Units.mib 2));
       false
     with Out_of_memory -> true)

let test_heap_sink_swap_and_restore () =
  let count1, get1 = Access.Tap.counting () in
  let h = Heap.create ~capacity:(Units.mib 1) ~sink:count1 () in
  let a = Heap.alloc h Units.page_size in
  Heap.write_u64 h a 1;
  let count2, get2 = Access.Tap.counting () in
  Heap.set_sink h count2;
  Heap.write_u64 h a 2;
  check_int "old sink stopped" 1 (get1 ());
  check_int "new sink sees" 1 (get2 ());
  (* restore_page: uninstrumented, byte-exact, validated *)
  Heap.restore_page h ~addr:a ~data:(String.make Units.page_size 'z');
  check_int "no events from restore" 1 (get2 ());
  Alcotest.(check string) "restored" (String.make 8 'z') (Heap.peek_bytes h a 8);
  check_bool "unaligned restore rejected" true
    (try
       Heap.restore_page h ~addr:(a + 1) ~data:(String.make Units.page_size 'z');
       false
     with Invalid_argument _ -> true)

let test_heap_poked_pages () =
  let h = quiet_heap () in
  let a = Heap.alloc h (2 * Units.page_size) in
  Heap.poke_f64 h a 1.5;
  check_bool "poked page flagged" true (Heap.page_poked h ~page:(a / Units.page_size));
  check_bool "other page clean" false
    (Heap.page_poked h ~page:((a / Units.page_size) + 1));
  Heap.write_u64 h (a + Units.page_size) 7;
  check_bool "instrumented write does not poke" false
    (Heap.page_poked h ~page:((a / Units.page_size) + 1))

let prop_heap_alloc_aligned =
  QCheck.Test.make ~name:"alloc respects alignment" ~count:200
    QCheck.(pair (int_range 1 500) (int_bound 3))
    (fun (size, align_pow) ->
      let h = quiet_heap () in
      let align = 8 lsl align_pow in
      Heap.alloc h ~align size mod align = 0)

(* ------------------------------------------------------------------ *)
(* Kv_store *)

let test_kv_set_get () =
  let h = quiet_heap () in
  let kv = Kv_store.create h ~nbuckets:64 in
  Kv_store.set kv "a" "1";
  Kv_store.set kv "b" "2";
  Alcotest.(check (option string)) "get a" (Some "1") (Kv_store.get kv "a");
  Alcotest.(check (option string)) "get b" (Some "2") (Kv_store.get kv "b");
  Alcotest.(check (option string)) "miss" None (Kv_store.get kv "c");
  Kv_store.set kv "a" "9";
  Alcotest.(check (option string)) "overwrite same size" (Some "9") (Kv_store.get kv "a");
  Kv_store.set kv "a" "longer-value";
  Alcotest.(check (option string))
    "overwrite new size" (Some "longer-value") (Kv_store.get kv "a");
  check_int "entries" 2 (Kv_store.entries kv)

let test_kv_many_collisions () =
  (* A 2-bucket table forces long chains; all keys must still resolve. *)
  let h = quiet_heap () in
  let kv = Kv_store.create h ~nbuckets:2 in
  for i = 0 to 199 do
    Kv_store.set kv (Kv_store.key_of_int i) (string_of_int i)
  done;
  for i = 0 to 199 do
    Alcotest.(check (option string))
      "chained lookup" (Some (string_of_int i))
      (Kv_store.get kv (Kv_store.key_of_int i))
  done;
  (* Resize one mid-chain entry and make sure the chain survives relinking. *)
  Kv_store.set kv (Kv_store.key_of_int 100) "a-very-different-length-value";
  for i = 98 to 102 do
    check_bool "chain intact" true (Kv_store.get kv (Kv_store.key_of_int i) <> None)
  done

let test_kv_driver () =
  let h = quiet_heap ~capacity:(Units.mib 8) () in
  let kv = Kv_store.create h ~nbuckets:1024 in
  let rng = Rng.create ~seed:1 in
  let r =
    Kv_store.run_driver kv ~rng ~pattern:Kv_store.Rand ~keys:500 ~ops:2_000
      ~value_len:64 ~set_ratio:0.5
  in
  check_int "ops accounted" 2_000 (r.Kv_store.sets - 500 + r.Kv_store.gets);
  check_int "all gets hit" r.Kv_store.gets r.Kv_store.hits

let test_kv_remove () =
  let h = quiet_heap () in
  let kv = Kv_store.create h ~nbuckets:4 in
  for i = 0 to 20 do
    Kv_store.set kv (Kv_store.key_of_int i) (string_of_int i)
  done;
  check_bool "remove present" true (Kv_store.remove kv (Kv_store.key_of_int 10));
  check_bool "remove again fails" false (Kv_store.remove kv (Kv_store.key_of_int 10));
  Alcotest.(check (option string)) "gone" None (Kv_store.get kv (Kv_store.key_of_int 10));
  check_int "entries decremented" 20 (Kv_store.entries kv);
  (* neighbours in the chain survive the unlink *)
  for i = 0 to 20 do
    if i <> 10 then
      Alcotest.(check (option string))
        "chain intact" (Some (string_of_int i))
        (Kv_store.get kv (Kv_store.key_of_int i))
  done

let prop_kv_model =
  (* Against a Hashtbl model: arbitrary set/get/del interleavings agree. *)
  QCheck.Test.make ~name:"kv_store agrees with Hashtbl model" ~count:60
    QCheck.(small_list (pair (int_bound 30) (option (option (int_bound 1000)))))
    (fun ops ->
      let h = quiet_heap () in
      let kv = Kv_store.create h ~nbuckets:8 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          let key = "k" ^ string_of_int k in
          match op with
          | Some (Some v) ->
              let value = String.make (1 + (v mod 20)) 'x' ^ string_of_int v in
              Kv_store.set kv key value;
              Hashtbl.replace model key value;
              true
          | Some None ->
              let expected = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Kv_store.remove kv key = expected
          | None -> Kv_store.get kv key = Hashtbl.find_opt model key)
        ops)

(* ------------------------------------------------------------------ *)
(* Graph + algorithms *)

let small_graph ?(vertices = 300) ?(avg_degree = 6) ?(seed = 11) () =
  let h = quiet_heap ~capacity:(Units.mib 8) () in
  Graph.generate h ~rng:(Rng.create ~seed) ~vertices ~avg_degree

let test_graph_structure () =
  let g = small_graph () in
  check_int "vertices" 300 (Graph.vertex_count g);
  check_int "edges even (undirected)" 0 (Graph.edge_count g mod 2);
  let total_degree = ref 0 in
  for v = 0 to 299 do
    total_degree := !total_degree + Graph.degree g v
  done;
  check_int "sum of degrees = edge entries" (Graph.edge_count g) !total_degree;
  (* neighbours are valid vertex ids and no self-loops *)
  for v = 0 to 299 do
    Graph.iter_neighbors g v (fun u ->
        check_bool "valid id" true (u >= 0 && u < 300);
        check_bool "no self loop" true (u <> v))
  done

let test_pagerank_mass () =
  let g = small_graph () in
  let sum = Graph_algos.pagerank g ~iterations:5 in
  (* Push PageRank conserves (1-d) + d * mass of non-dangling vertices;
     with few dangling vertices the sum stays near 1. *)
  check_bool "mass in range" true (sum > 0.5 && sum < 1.05)

let test_coloring_proper () =
  let g = small_graph () in
  let r = Graph_algos.coloring g in
  check_bool "proper" true
    (Graph_algos.Check.coloring_is_proper g ~colors_addr:r.Graph_algos.colors_addr);
  check_bool "uses few colors" true (r.Graph_algos.colors_used <= 64)

let test_components () =
  let g = small_graph () in
  let r = Graph_algos.connected_components g in
  check_bool "consistent" true
    (Graph_algos.Check.components_consistent g ~comp_addr:r.Graph_algos.comp_addr);
  check_bool "count sane" true
    (r.Graph_algos.component_count >= 1 && r.Graph_algos.component_count <= 300)

let test_label_propagation () =
  let g = small_graph () in
  let labels = Graph_algos.label_propagation g ~iterations:4 in
  check_bool "labels shrink" true (labels >= 1 && labels < 300)

(* ------------------------------------------------------------------ *)
(* Mapreduce *)

let test_linear_regression_fit () =
  let h = quiet_heap ~capacity:(Units.mib 8) () in
  let r =
    Mapreduce.linear_regression h ~rng:(Rng.create ~seed:5) ~points:5_000 ~chunk:512
  in
  check_bool "slope ~ 2" true (abs_float (r.Mapreduce.slope -. 2.0) < 0.05);
  check_bool "intercept ~ 1" true (abs_float (r.Mapreduce.intercept -. 1.0) < 0.05)

let test_histogram_conservation () =
  let h = quiet_heap ~capacity:(Units.mib 8) () in
  let total = Mapreduce.histogram h ~rng:(Rng.create ~seed:5) ~samples:10_000 ~bins:64 in
  check_int "no sample lost" 10_000 total

(* ------------------------------------------------------------------ *)
(* Column store *)

let test_column_store_mix () =
  let h = quiet_heap ~capacity:(Units.mib 8) () in
  let s = Column_store.create h ~warehouses:2 ~items:500 ~customers:300 ~max_orders:2_000 in
  let stats = Column_store.run_mix s ~rng:(Rng.create ~seed:2) ~transactions:2_000 in
  check_int "orders recorded" stats.Column_store.new_orders (Column_store.order_count s);
  check_bool "rollbacks rare" true
    (stats.Column_store.rollbacks * 20 < stats.Column_store.new_orders + 1000);
  check_bool "payments happened" true (stats.Column_store.payments > 0)

(* ------------------------------------------------------------------ *)
(* Registry: every workload runs clean at Smoke scale and emits a
   plausible access stream. *)

let registry_case (spec : Workloads.spec) =
  Alcotest.test_case spec.Workloads.name `Quick (fun () ->
      let count, get = Access.Tap.counting () in
      let writes, get_writes = Access.Tap.counting () in
      let sink = Access.Tap.tee [ count; Access.Tap.filter Access.is_write writes ] in
      let heap =
        Heap.create ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke) ~sink ()
      in
      spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
      check_bool "emits accesses" true (get () > 1_000);
      check_bool "emits writes" true (get_writes () > 100);
      check_bool "uses the arena" true (Heap.used heap > Units.kib 16))

let test_extensions () =
  let zipf = Workloads.find "Redis-Zipf" in
  let count, get = Access.Tap.counting () in
  let heap =
    Heap.create ~capacity:(zipf.Workloads.heap_capacity Workloads.Smoke) ~sink:count ()
  in
  zipf.Workloads.run Workloads.Smoke ~heap ~seed:42;
  check_bool "zipf extension runs" true (get () > 1000)

let test_registry_complete () =
  Alcotest.(check (list string))
    "Table 2 rows"
    [
      "Redis-Rand";
      "Redis-Seq";
      "Linear Regression";
      "Histogram";
      "Page Rank";
      "Graph Coloring";
      "Connected Components";
      "Label Propagation";
      "VoltDB";
    ]
    (List.map (fun (s : Workloads.spec) -> s.Workloads.name) Workloads.all)

let test_rand_amplifies_more_than_seq () =
  (* The motivating Table 2 contrast, as an invariant over the workload
     generators themselves. *)
  let module Amp = Kona_trace.Amplification in
  let module Window = Kona_trace.Window in
  let amp_of (spec : Workloads.spec) =
    let amp = Amp.create () in
    let w =
      Window.create
        ~quantum:(spec.Workloads.quantum Workloads.Smoke)
        ~inner:(Amp.sink amp)
        ~on_boundary:(fun ~window -> Amp.close_window amp ~window)
    in
    let heap =
      Heap.create
        ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke)
        ~sink:(Window.sink w) ()
    in
    spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
    Window.flush w;
    (Amp.aggregate ~drop_last:true amp).Amp.agg_amp_page
  in
  let rand = amp_of Workloads.redis_rand and seq = amp_of Workloads.redis_seq in
  check_bool
    (Printf.sprintf "rand (%.2f) amplifies more than seq (%.2f)" rand seq)
    true (rand > 1.5 *. seq)

let test_workload_determinism () =
  (* Same seed => identical access streams. *)
  let stream seed =
    let acc = ref [] in
    let heap =
      Heap.create
        ~capacity:(Workloads.redis_rand.Workloads.heap_capacity Workloads.Smoke)
        ~sink:(fun e -> acc := e :: !acc)
        ()
    in
    Workloads.redis_rand.Workloads.run Workloads.Smoke ~heap ~seed;
    !acc
  in
  check_bool "identical streams" true (stream 7 = stream 7);
  check_bool "different seeds differ" true (stream 7 <> stream 8)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_workloads"
    [
      ( "heap",
        [
          Alcotest.test_case "read/write roundtrip" `Quick test_heap_rw_roundtrip;
          Alcotest.test_case "alloc no overlap" `Quick test_heap_alloc_no_overlap;
          Alcotest.test_case "free reuse" `Quick test_heap_free_reuse;
          Alcotest.test_case "event emission" `Quick test_heap_events;
          Alcotest.test_case "bounds" `Quick test_heap_bounds;
          Alcotest.test_case "sink swap + restore" `Quick test_heap_sink_swap_and_restore;
          Alcotest.test_case "poked pages" `Quick test_heap_poked_pages;
        ] );
      qsuite "heap-props" [ prop_heap_alloc_aligned ];
      ( "kv_store",
        [
          Alcotest.test_case "set/get" `Quick test_kv_set_get;
          Alcotest.test_case "collisions & resize" `Quick test_kv_many_collisions;
          Alcotest.test_case "driver" `Quick test_kv_driver;
          Alcotest.test_case "remove" `Quick test_kv_remove;
        ] );
      qsuite "kv-props" [ prop_kv_model ];
      ( "graph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "pagerank mass" `Quick test_pagerank_mass;
          Alcotest.test_case "coloring proper" `Quick test_coloring_proper;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "label propagation" `Quick test_label_propagation;
        ] );
      ( "mapreduce",
        [
          Alcotest.test_case "linear regression fit" `Quick test_linear_regression_fit;
          Alcotest.test_case "histogram conservation" `Quick test_histogram_conservation;
        ] );
      ("column_store", [ Alcotest.test_case "tpcc mix" `Quick test_column_store_mix ]);
      ( "registry",
        Alcotest.test_case "Table 2 rows" `Quick test_registry_complete
        :: Alcotest.test_case "extensions (Redis-Zipf)" `Quick test_extensions
        :: List.map registry_case Workloads.all );
      ( "determinism",
        [ Alcotest.test_case "seeded streams" `Quick test_workload_determinism ] );
      ( "amplification-contrast",
        [
          Alcotest.test_case "rand > seq (Table 2 shape)" `Quick
            test_rand_amplifies_more_than_seq;
        ] );
    ]
