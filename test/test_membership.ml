(* Tests for lease-based membership and partition-tolerant recovery: the
   suspicion state machine over the virtual clock, false-positive
   declarations under asymmetric partitions, fencing-epoch rejection of
   the returning node's stale deliveries, minted backing-id hygiene at
   the controller, interruptible re-replication under a second fault,
   and bit-reproducibility of partitioned runs. *)

open Kona
module Membership = Kona_membership.Membership
module Backoff = Kona_util.Backoff
module Histogram = Kona_util.Histogram
module Units = Kona_util.Units
module Rng = Kona_util.Rng
module Heap = Kona_workloads.Heap
module Workloads = Kona_workloads.Workloads
module Fault_spec = Kona_faults.Fault_spec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Membership: the lease state machine in isolation *)

let make_detector ?(heartbeat_ns = 10_000) ?(lease_ns = 50_000) () =
  let cut = Hashtbl.create 4 in
  let deaths = ref [] in
  let charged = ref 0 in
  let m =
    Membership.create ~heartbeat_ns ~lease_ns
      ~reachable:(fun ~id ~at:_ -> not (Hashtbl.mem cut id))
      ~on_dead:(fun ~id ~at -> deaths := (id, at) :: !deaths)
      ~charge:(fun ~ns -> charged := !charged + ns)
      ()
  in
  (m, cut, deaths, charged)

let test_create_validation () =
  let mk ~heartbeat_ns ~lease_ns () =
    Membership.create ~heartbeat_ns ~lease_ns
      ~reachable:(fun ~id:_ ~at:_ -> true)
      ~on_dead:(fun ~id:_ ~at:_ -> ())
      ~charge:(fun ~ns:_ -> ())
      ()
  in
  check_bool "heartbeat must be positive" true
    (raises_invalid (fun () -> mk ~heartbeat_ns:0 ~lease_ns:50_000 ()));
  check_bool "lease must cover a heartbeat" true
    (raises_invalid (fun () -> mk ~heartbeat_ns:10_000 ~lease_ns:5_000 ()))

let test_lease_lifecycle () =
  let m, cut, deaths, charged = make_detector () in
  Membership.track m ~id:0 ~now:0;
  Membership.track m ~id:1 ~now:0;
  Membership.track m ~id:0 ~now:0 (* idempotent *);
  check_bool "both tracked" true (Membership.tracked m = [ 0; 1 ]);
  Membership.tick m ~now:40_000;
  check_bool "heartbeating keeps nodes alive" true
    (Membership.state m ~id:0 = Some Membership.Alive
    && Membership.state m ~id:1 = Some Membership.Alive);
  check_bool "untracked id has no state" true (Membership.state m ~id:9 = None);
  (* Cut node 1's heartbeats: silence > lease suspects it, silence > 2x
     lease declares it dead; node 0 is untouched throughout. *)
  Hashtbl.replace cut 1 ();
  Membership.tick m ~now:100_000;
  check_bool "silence beyond the lease suspects" true
    (Membership.state m ~id:1 = Some Membership.Suspected);
  check_int "suspicion counted" 1 (Membership.suspicions m);
  check_bool "no death yet" true (!deaths = []);
  Membership.tick m ~now:200_000;
  check_bool "silence beyond twice the lease kills" true
    (Membership.state m ~id:1 = Some Membership.Dead);
  check_int "death fired once, for node 1" 1 (List.length !deaths);
  check_int "dead node named" 1 (fst (List.hd !deaths));
  check_int "declared_dead counted" 1 (Membership.declared_dead m);
  check_bool "survivor still alive" true
    (Membership.state m ~id:0 = Some Membership.Alive);
  check_int "detection latency recorded" 1
    (Histogram.count (Membership.detect_latency m));
  check_bool "evaluation charged the clock" true (!charged > 0);
  (* A dead declaration is final: more silence fires nothing new. *)
  Membership.tick m ~now:400_000;
  check_int "death fires once" 1 (Membership.declared_dead m)

let test_suspicion_clears_on_comeback () =
  let m, cut, deaths, _ = make_detector () in
  Membership.track m ~id:0 ~now:0;
  Hashtbl.replace cut 0 ();
  Membership.tick m ~now:70_000;
  check_bool "suspected" true (Membership.state m ~id:0 = Some Membership.Suspected);
  Hashtbl.remove cut 0;
  Membership.tick m ~now:90_000;
  check_bool "comeback clears the suspicion" true
    (Membership.state m ~id:0 = Some Membership.Alive);
  check_int "clearance counted" 1 (Membership.suspicions_cleared m);
  check_bool "never died" true (!deaths = [] && Membership.declared_dead m = 0);
  check_int "no false positive either" 0 (Membership.false_positives m)

let test_false_positive_counted_once () =
  let m, cut, _, _ = make_detector () in
  Membership.track m ~id:0 ~now:0;
  Hashtbl.replace cut 0 ();
  Membership.tick m ~now:200_000;
  check_bool "declared dead" true (Membership.state m ~id:0 = Some Membership.Dead);
  (* The partition heals: the node heartbeats again.  The declaration
     stands, and the comeback counts once no matter how long it lives. *)
  Hashtbl.remove cut 0;
  Membership.tick m ~now:300_000;
  Membership.tick m ~now:500_000;
  check_bool "declaration stands" true
    (Membership.state m ~id:0 = Some Membership.Dead);
  check_int "false positive counted once" 1 (Membership.false_positives m);
  check_bool "counters list is stable and complete" true
    (List.map fst (Membership.counters m)
    = [
        "heartbeats"; "suspicions"; "suspicions_cleared"; "declared_dead";
        "false_positives";
      ])

(* ------------------------------------------------------------------ *)
(* Recovery scheduler: resumable FIFO of named tasks *)

module Recovery = Kona_membership.Recovery

let test_recovery_fifo () =
  let r = Recovery.create () in
  check_bool "fresh queue idle" true (Recovery.idle r && Recovery.step r ~now:0 = `Idle);
  let steps_a = ref 0 in
  ignore
    (Recovery.enqueue r ~name:"a" (fun ~now:_ ->
         incr steps_a;
         if !steps_a < 3 then `Again else `Done));
  ignore (Recovery.enqueue r ~name:"b" (fun ~now:_ -> `Done));
  check_bool "fifo order" true (Recovery.pending r = [ "a"; "b" ]);
  check_bool "head steps first" true (Recovery.step r ~now:0 = `Stepped "a");
  check_bool "resumes the same task" true (Recovery.step r ~now:1 = `Stepped "a");
  check_bool "finishes in place" true (Recovery.step r ~now:2 = `Finished "a");
  check_bool "then the next" true (Recovery.step r ~now:3 = `Finished "b");
  check_bool "drained" true (Recovery.idle r);
  check_int "completions counted" 2 (Recovery.completed r)

let test_recovery_enqueue_during_step () =
  (* Failover queues re-replication from inside its own step: a task
     enqueued while the head task is finishing must survive — a stale
     snapshot of the tail would silently drop it. *)
  let r = Recovery.create () in
  ignore
    (Recovery.enqueue r ~name:"failover" (fun ~now:_ ->
         ignore (Recovery.enqueue r ~name:"re-replicate" (fun ~now:_ -> `Done));
         `Done));
  check_bool "head finished" true (Recovery.step r ~now:0 = `Finished "failover");
  check_bool "follow-up task survived its parent's completion" true
    (Recovery.pending r = [ "re-replicate" ]);
  check_bool "and runs" true (Recovery.step r ~now:1 = `Finished "re-replicate")

let test_recovery_cancel () =
  let r = Recovery.create () in
  let h = Recovery.enqueue r ~name:"drain" (fun ~now:_ -> `Again) in
  ignore (Recovery.enqueue r ~name:"drain" (fun ~now:_ -> `Again));
  check_bool "cancel by handle" true (Recovery.cancel r ~handle:h);
  check_bool "handle is gone" true (not (Recovery.cancel r ~handle:h));
  check_int "cancel by name sweeps the rest" 1 (Recovery.cancel_named r ~name:"drain");
  check_bool "queue empty" true (Recovery.idle r);
  check_int "cancellations counted" 2 (Recovery.cancelled r)

(* ------------------------------------------------------------------ *)
(* Backoff: one retry/backoff policy for every resending layer *)

let test_backoff_shape () =
  let c = Backoff.default in
  check_int "first step is the base" 8_000 (Backoff.delay_ns c ~base:8_000 ~attempt:0);
  check_int "doubles per attempt" 32_000 (Backoff.delay_ns c ~base:8_000 ~attempt:2);
  check_int "capped at 2^cap_shift" 128_000
    (Backoff.delay_ns c ~base:8_000 ~attempt:40);
  let c' = Backoff.with_retry_max c 3 in
  check_bool "retry-max overrides both layers" true
    (c'.Backoff.qp_retry_max = 3 && c'.Backoff.rpc_retry_max = 3);
  let c'' = Backoff.with_base_ns c 500 in
  check_int "base override" 500 c''.Backoff.base_ns;
  check_bool "other fields preserved" true
    (c''.Backoff.qp_retry_max = c.Backoff.qp_retry_max
    && c''.Backoff.cap_shift = c.Backoff.cap_shift)

(* ------------------------------------------------------------------ *)
(* Controller: minted backing ids never collide with registered nodes *)

let test_minted_ids_disjoint () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.kib 64));
  Rack_controller.register_node c (Memory_node.create ~id:1 ~capacity:(Units.kib 64));
  let a = Rack_controller.mint_backing_id c in
  let b = Rack_controller.mint_backing_id c in
  check_bool "minted ids live above the registered space" true (a >= 1_000 && b > a);
  check_bool "registering a minted id is refused" true
    (raises_invalid (fun () ->
         Rack_controller.register_node c
           (Memory_node.create ~id:a ~capacity:(Units.kib 64))));
  (* A node registered in the minted range first makes the mint skip it:
     ids stay unique even when the spaces are abused. *)
  let c2 = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c2
    (Memory_node.create ~id:1_000 ~capacity:(Units.kib 64));
  let m = Rack_controller.mint_backing_id c2 in
  check_bool "mint skips registered ids" true (m <> 1_000)

(* ------------------------------------------------------------------ *)
(* Runtime end to end: partition -> false positive -> fencing *)

let run_partitioned ?(heartbeat_ns = 100_000) ?(lease_ns = 1_000_000)
    ?(dur = "5ms") () =
  let faults =
    Fault_spec.parse_exn (Printf.sprintf "partition@200us:dur=%s,nodes=0" dur)
  in
  let config =
    {
      Runtime.default_config with
      fmem_pages = 64;
      replicas = 1;
      faults;
      fault_seed = 11;
      heartbeat_ns = Some heartbeat_ns;
      lease_ns;
    }
  in
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let spec = Workloads.find "kv-uniform" in
  let heap =
    Heap.create
      ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke)
      ~sink:(Runtime.sink rt) ()
  in
  heap_ref := Some heap;
  spec.Workloads.run Workloads.Smoke ~heap ~seed:42;
  Runtime.drain rt;
  (rt, heap, controller)

let integrity_ok rt heap controller =
  let ok = ref true and pages = ref 0 in
  Resource_manager.iter_backed_pages (Runtime.resource_manager rt)
    (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        incr pages;
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek
            (Rack_controller.node controller ~id:node)
            ~addr:remote_addr ~len:Units.page_size
        in
        if local <> remote then ok := false
      end);
  !ok && !pages > 0

let test_false_positive_fencing_end_to_end () =
  let rt, heap, controller = run_partitioned () in
  check_int "one partition window" 1 (Runtime.partitions_started rt);
  check_int "the healthy node was declared dead" 1 (Runtime.declared_dead rt);
  check_int "and came back: false positive" 1 (Runtime.false_positives rt);
  check_bool "failover ran on lease expiry" true
    (Histogram.count (Runtime.failover_latency rt) = 1);
  (* Every stale delivery the returning node attempts is rejected by the
     fence — and nothing else is (attempts = receiver stale verdicts). *)
  let rejects = Runtime.fencing_rejects rt in
  check_bool "fence rejected the returning node's stale writes" true (rejects > 0);
  check_int "rejects = stale-epoch attempts" rejects
    (List.assoc "seq.stale_epochs" (Runtime.integrity_counters rt));
  check_int "no write landed past the fence" 0 (Runtime.post_fence_writes rt);
  check_bool "run not degraded" true (Runtime.degraded rt = None);
  check_bool "recovery converged" true (Runtime.recovery_idle rt);
  check_bool "remote memory matches the heap" true (integrity_ok rt heap controller);
  match Runtime.replication rt with
  | Some r -> check_int "zero divergence" 0 (Replication.divergent_mirrors r ~controller)
  | None -> Alcotest.fail "replication expected"

let test_short_partition_is_tolerated () =
  (* A window shorter than the lease never reaches suspicion expiry:
     no declaration, no failover, no fencing — and no data loss. *)
  let rt, heap, controller = run_partitioned ~dur:"150us" () in
  check_int "window seen" 1 (Runtime.partitions_started rt);
  check_int "nobody declared dead" 0 (Runtime.declared_dead rt);
  check_int "no fencing epoch minted" 0
    (Rack_controller.fencing_epoch controller);
  check_bool "remote memory matches the heap" true (integrity_ok rt heap controller)

let test_partitioned_run_reproducible () =
  let fingerprint () =
    let rt, _, _ = run_partitioned () in
    (Runtime.integrity_counters rt, Runtime.stats rt, Runtime.elapsed_ns rt)
  in
  check_bool "same seed, bit-identical counters and clocks" true
    (fingerprint () = fingerprint ())

(* ------------------------------------------------------------------ *)
(* Double fault: the promoted mirror crashes mid-re-replication *)

let test_crash_promoted_mirror_mid_re_replication () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config =
    {
      Runtime.default_config with
      fmem_pages = 64;
      replicas = 2;
      (* leased detection: failover and re-replication run as resumable
         recovery tasks instead of the synchronous legacy crash hook *)
      heartbeat_ns = Some 10_000;
      lease_ns = 50_000;
    }
  in
  let rt = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 8) ~sink:(Runtime.sink rt) () in
  heap_ref := Some heap;
  let region = Units.mib 4 in
  let base = Heap.alloc heap region in
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 8_000 do
    Heap.write_u64 heap
      (base + (Rng.int rng ((region - 8) / 8) * 8))
      (Rng.int rng 1_000_000)
  done;
  Runtime.drain rt;
  (* Each write advances the virtual clock and polls faults once: the
     lease expires, the failover task steps, re-replication enqueues —
     and between polls the pending list is observable. *)
  let tick () = Heap.write_u64 heap base 42 in
  let pump_until cond =
    let guard = ref 0 in
    while (not (cond ())) && !guard < 2_000_000 do
      incr guard;
      tick ()
    done;
    cond ()
  in
  (* First fault: the store backing logical node 1 fail-stops.  Its
     heartbeats cease; the lease declares it dead; failover promotes one
     of its two mirrors and enqueues stepwise re-replication. *)
  Runtime.crash_node rt ~id:1;
  check_bool "re-replication enqueued after leased declaration" true
    (pump_until (fun () ->
         List.mem "re-replicate:1" (Runtime.recovery_pending rt)));
  check_int "a real failure, not a false positive" 0
    (Runtime.false_positives rt);
  let promoted = Memory_node.id (Rack_controller.node controller ~id:1) in
  check_bool "a minted mirror took over" true (promoted >= 1_000);
  (* Second fault, mid-recovery: the promoted store crashes while the
     re-replication task is still pending.  The resumable task re-reads
     its source per step, so it re-plans instead of raising. *)
  Runtime.crash_node rt ~id:promoted;
  check_bool "second declaration and promotion" true
    (pump_until (fun () ->
         Runtime.declared_dead rt = 2
         && Memory_node.id (Rack_controller.node controller ~id:1) <> promoted));
  let promoted2 = Memory_node.id (Rack_controller.node controller ~id:1) in
  check_bool "the surviving mirror was promoted" true (promoted2 >= 1_000);
  (* Drive recovery to convergence the way the rack engine does. *)
  let guard = ref 0 in
  while not (Runtime.recovery_idle rt) && !guard < 10_000 do
    incr guard;
    ignore (Runtime.step_recovery rt)
  done;
  check_bool "recovery converged" true (Runtime.recovery_idle rt);
  check_int "both failovers stamped" 2
    (Histogram.count (Runtime.failover_latency rt));
  Runtime.drain rt;
  check_bool "run survived both faults" true (Runtime.degraded rt = None);
  check_bool "remote memory matches the heap" true (integrity_ok rt heap controller);
  match Runtime.replication rt with
  | Some r ->
      check_int "zero divergence after overlapping faults" 0
        (Replication.divergent_mirrors r ~controller)
  | None -> Alcotest.fail "replication expected"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kona_membership"
    [
      ( "lease",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "lifecycle" `Quick test_lease_lifecycle;
          Alcotest.test_case "suspicion clears on comeback" `Quick
            test_suspicion_clears_on_comeback;
          Alcotest.test_case "false positive counted once" `Quick
            test_false_positive_counted_once;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fifo of resumable tasks" `Quick test_recovery_fifo;
          Alcotest.test_case "enqueue during finishing step" `Quick
            test_recovery_enqueue_during_step;
          Alcotest.test_case "cancellation" `Quick test_recovery_cancel;
        ] );
      ("backoff", [ Alcotest.test_case "unified shape" `Quick test_backoff_shape ]);
      ( "controller-ids",
        [ Alcotest.test_case "minted ids disjoint" `Quick test_minted_ids_disjoint ]
      );
      ( "fencing",
        [
          Alcotest.test_case "false-positive fencing end to end" `Quick
            test_false_positive_fencing_end_to_end;
          Alcotest.test_case "short partition tolerated" `Quick
            test_short_partition_is_tolerated;
          Alcotest.test_case "partitioned run reproducible" `Quick
            test_partitioned_run_reproducible;
        ] );
      ( "double-fault",
        [
          Alcotest.test_case "crash promoted mirror mid-re-replication" `Quick
            test_crash_promoted_mirror_mid_re_replication;
        ] );
    ]
