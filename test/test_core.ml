(* Tests for the Kona core library: slabs, controller, resource manager,
   CL-log, the assembled runtime (including the end-to-end data-integrity
   invariant), KCacheSim and KTracker. *)

open Kona
module Access = Kona_trace.Access
module Bitmap = Kona_util.Bitmap
module Clock = Kona_util.Clock
module Units = Kona_util.Units
module Heap = Kona_workloads.Heap
module Workloads = Kona_workloads.Workloads
module Qp = Kona_rdma.Qp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Slab / controller / resource manager *)

let test_slab_translation () =
  let slab = { Slab.id = 0; node = 2; vaddr = 0x100000; remote_addr = 0x4000; size = 0x1000 } in
  check_bool "contains" true (Slab.contains slab ~addr:0x100fff);
  check_bool "excludes" false (Slab.contains slab ~addr:0x101000);
  check_int "translate" 0x4010 (Slab.remote_of_vaddr slab ~vaddr:0x100010);
  check_bool "outside raises" true
    (try
       ignore (Slab.remote_of_vaddr slab ~vaddr:0);
       false
     with Invalid_argument _ -> true)

let controller_with_nodes ?(slab_size = Units.kib 64) ?(nodes = 2) ?(capacity = Units.mib 1) () =
  let c = Rack_controller.create ~slab_size () in
  for i = 0 to nodes - 1 do
    Rack_controller.register_node c (Memory_node.create ~id:i ~capacity)
  done;
  c

let test_controller_round_robin () =
  let c = controller_with_nodes () in
  let s1 = Rack_controller.allocate_slab c ~vaddr:0 in
  let s2 = Rack_controller.allocate_slab c ~vaddr:65536 in
  let s3 = Rack_controller.allocate_slab c ~vaddr:131072 in
  check_int "node 0 first" 0 s1.Slab.node;
  check_int "node 1 next" 1 s2.Slab.node;
  check_int "wraps" 0 s3.Slab.node;
  check_int "slabs allocated" 3 (Rack_controller.slabs_allocated c)

let test_controller_skips_full_nodes () =
  let c = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node c (Memory_node.create ~id:0 ~capacity:(Units.kib 64));
  Rack_controller.register_node c (Memory_node.create ~id:1 ~capacity:(Units.mib 1));
  ignore (Rack_controller.allocate_slab c ~vaddr:0) (* fills node 0 *);
  let s = Rack_controller.allocate_slab c ~vaddr:65536 in
  check_int "skips exhausted node" 1 s.Slab.node;
  let s = Rack_controller.allocate_slab c ~vaddr:131072 in
  check_int "keeps using node 1" 1 s.Slab.node

let test_controller_oom () =
  let c = controller_with_nodes ~nodes:1 ~capacity:(Units.kib 64) () in
  ignore (Rack_controller.allocate_slab c ~vaddr:0);
  check_bool "oom" true
    (try
       ignore (Rack_controller.allocate_slab c ~vaddr:65536);
       false
     with Out_of_memory -> true)

let test_controller_occupancy () =
  let slab = Units.kib 64 in
  let c = controller_with_nodes ~capacity:(Units.kib 256) () in
  check_int "node 0 starts free" (Units.kib 256) (Rack_controller.free_bytes c ~id:0);
  check_int "node 0 starts unused" 0 (Rack_controller.used_bytes c ~id:0);
  ignore (Rack_controller.allocate_slab c ~vaddr:0) (* node 0 *);
  ignore (Rack_controller.allocate_slab c ~vaddr:slab) (* node 1 *);
  ignore (Rack_controller.allocate_slab c ~vaddr:(2 * slab)) (* node 0 *);
  check_int "node 0 holds two slabs" (2 * slab) (Rack_controller.used_bytes c ~id:0);
  check_int "node 0 free shrank" (Units.kib 256 - (2 * slab))
    (Rack_controller.free_bytes c ~id:0);
  check_int "node 1 holds one slab" slab (Rack_controller.used_bytes c ~id:1);
  check_bool "unknown id raises" true
    (try
       ignore (Rack_controller.free_bytes c ~id:7);
       false
     with Invalid_argument _ -> true)

let test_controller_skips_crashed_nodes () =
  let c = controller_with_nodes () in
  Memory_node.crash (Rack_controller.node c ~id:0);
  let s = Rack_controller.allocate_slab c ~vaddr:0 in
  check_int "crashed node skipped" 1 s.Slab.node;
  let s = Rack_controller.allocate_slab c ~vaddr:65536 in
  check_int "still node 1" 1 s.Slab.node;
  Rack_controller.replace_node c ~id:0
    ~node:(Memory_node.create ~id:100 ~capacity:(Units.mib 1));
  let s = Rack_controller.allocate_slab c ~vaddr:131072 in
  check_int "round robin resumes on the replacement" 0 s.Slab.node;
  check_int "replacement charged one slab" (Units.kib 64)
    (Rack_controller.used_bytes c ~id:0)

let test_controller_quota () =
  let slab = Units.kib 64 in
  let c = controller_with_nodes () in
  Rack_controller.set_quota c ~tenant:"a" ~bytes:(2 * slab);
  check_bool "cap recorded" true
    (Rack_controller.quota c ~tenant:"a" = Some (2 * slab));
  ignore (Rack_controller.allocate_slab ~tenant:"a" c ~vaddr:0);
  ignore (Rack_controller.allocate_slab ~tenant:"a" c ~vaddr:slab);
  check_int "charged" (2 * slab) (Rack_controller.tenant_used c ~tenant:"a");
  (match Rack_controller.allocate_slab ~tenant:"a" c ~vaddr:(2 * slab) with
  | _ -> Alcotest.fail "allocation past the cap must be rejected"
  | exception Rack_controller.Quota_exceeded { tenant; quota; used; requested } ->
      Alcotest.(check string) "names the tenant" "a" tenant;
      check_int "cap" (2 * slab) quota;
      check_int "used at rejection" (2 * slab) used;
      check_int "requested" slab requested);
  check_int "nothing charged on rejection" (2 * slab)
    (Rack_controller.tenant_used c ~tenant:"a");
  (* Other tenants — and unmetered allocations — are unaffected. *)
  ignore (Rack_controller.allocate_slab ~tenant:"b" c ~vaddr:(3 * slab));
  ignore (Rack_controller.allocate_slab c ~vaddr:(4 * slab));
  check_int "uncapped tenant still admitted" slab
    (Rack_controller.tenant_used c ~tenant:"b");
  check_bool "negative cap raises" true
    (try
       Rack_controller.set_quota c ~tenant:"a" ~bytes:(-1);
       false
     with Invalid_argument _ -> true)

let test_resource_manager_batching () =
  let c = controller_with_nodes () in
  let rm = Resource_manager.create ~batch:4 ~controller:c () in
  Resource_manager.ensure_backed rm ~addr:0 ~len:8;
  check_int "one round trip provisions a batch" 1
    (Resource_manager.controller_round_trips rm);
  check_int "batch slabs" 4 (List.length (Resource_manager.slabs rm));
  (* Addresses within the batch need no further round trips. *)
  Resource_manager.ensure_backed rm ~addr:(3 * Units.kib 64) ~len:8;
  check_int "still one round trip" 1 (Resource_manager.controller_round_trips rm);
  match Resource_manager.translate rm ~vaddr:100 with
  | Some (_node, raddr) -> check_int "offset preserved" 100 (raddr mod Units.kib 64)
  | None -> Alcotest.fail "backed address must translate"

let test_resource_manager_spanning () =
  let c = controller_with_nodes () in
  let rm = Resource_manager.create ~batch:1 ~controller:c () in
  (* A range spanning two slabs backs both. *)
  Resource_manager.ensure_backed rm ~addr:(Units.kib 64 - 8) ~len:16;
  check_bool "first slab" true (Resource_manager.translate rm ~vaddr:0 <> None);
  check_bool "second slab" true (Resource_manager.translate rm ~vaddr:(Units.kib 64) <> None)

(* ------------------------------------------------------------------ *)
(* Memory node + CL log *)

let test_memory_node_log_receiver () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 64) in
  let line = String.make 64 'a' in
  ignore
    (Memory_node.receive_log node
       [ Memory_node.entry ~addr:128 ~data:line; Memory_node.entry ~addr:4096 ~data:line ]);
  Alcotest.(check string) "scattered" line (Memory_node.peek node ~addr:128 ~len:64);
  check_int "lines received" 2 (Memory_node.lines_received node);
  check_int "logs received" 1 (Memory_node.logs_received node)

let test_cl_log_roundtrip () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 64) in
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  let log = Cl_log.create ~capacity:8 ~qp ~cost:Kona_rdma.Cost.default
      ~resolve:(fun ~node:_ -> node) () in
  let line c = String.make 64 c in
  Cl_log.append_run log ~node:0 ~raddr:0 ~data:(line 'x');
  Cl_log.append_run log ~node:0 ~raddr:64 ~data:(line 'y');
  check_int "staged, not yet shipped" 0 (Memory_node.lines_received node);
  Cl_log.flush log;
  check_int "both delivered" 2 (Memory_node.lines_received node);
  Alcotest.(check string) "content x" (line 'x') (Memory_node.peek node ~addr:0 ~len:64);
  Alcotest.(check string) "content y" (line 'y') (Memory_node.peek node ~addr:64 ~len:64);
  check_int "lines logged" 2 (Cl_log.lines_logged log);
  check_bool "time charged" true (Clock.now clock > 0);
  let phases = List.map fst (Cl_log.breakdown_ns log) in
  Alcotest.(check (list string)) "phases" [ "bitmap"; "copy"; "rdma"; "ack" ] phases

let test_cl_log_autoflush () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 64) in
  let qp = Qp.create ~clock:(Clock.create ()) () in
  let log = Cl_log.create ~capacity:2 ~qp ~cost:Kona_rdma.Cost.default
      ~resolve:(fun ~node:_ -> node) () in
  let line = String.make 64 'z' in
  Cl_log.append_run log ~node:0 ~raddr:0 ~data:line;
  Cl_log.append_run log ~node:0 ~raddr:64 ~data:line;
  (* The auto-flush is asynchronous: the write is posted but its bytes only
     land at the memory node when the clock reaches its completion time. *)
  check_int "autoflush posted at capacity" 1 (Cl_log.flushes log);
  check_int "bytes still in flight" 0 (Memory_node.lines_received node);
  Cl_log.flush log;
  check_int "visible after the fence" 2 (Memory_node.lines_received node);
  check_bool "short line rejected" true
    (try
       Cl_log.append_run log ~node:0 ~raddr:0 ~data:"short";
       false
     with Invalid_argument _ -> true);
  (* A multi-line run counts as its number of lines. *)
  Cl_log.append_run log ~node:0 ~raddr:128 ~data:(String.make 256 'r');
  check_int "run of 4 lines autoflushes" 2 (Cl_log.flushes log);
  Cl_log.flush log;
  check_int "all six lines delivered" 6 (Memory_node.lines_received node);
  Alcotest.(check string) "run content intact" (String.make 256 'r')
    (Memory_node.peek node ~addr:128 ~len:256)

let test_cl_log_empty_flush_and_split () =
  let n0 = Memory_node.create ~id:0 ~capacity:(Units.kib 64) in
  let n1 = Memory_node.create ~id:1 ~capacity:(Units.kib 64) in
  let qp = Qp.create ~clock:(Clock.create ()) () in
  let log =
    Cl_log.create ~capacity:64 ~qp ~cost:Kona_rdma.Cost.default
      ~resolve:(fun ~node -> if node = 0 then n0 else n1)
      ()
  in
  Cl_log.flush log;
  check_int "empty flush ships nothing" 0 (Cl_log.flushes log);
  let line = String.make 64 'm' in
  Cl_log.append_run log ~node:0 ~raddr:0 ~data:line;
  Cl_log.append_run log ~node:1 ~raddr:64 ~data:line;
  Cl_log.append_run log ~node:0 ~raddr:128 ~data:line;
  Cl_log.flush log;
  check_int "per-node logs" 2 (Cl_log.flushes log);
  check_int "node 0 got 2 lines" 2 (Memory_node.lines_received n0);
  check_int "node 1 got 1 line" 1 (Memory_node.lines_received n1);
  (* Both node batches went out under one coalesced doorbell. *)
  check_int "one doorbell for the whole fence" 1 (Cl_log.doorbell_batches log);
  check_int "two WQEs under it" 2 (Cl_log.doorbell_wqes log)

let test_cl_log_empty_fence_costs_nothing () =
  (* Regression: the fence used to gate the final ack on the lifetime flush
     counter, so every fence after the first ever flush paid the ack
     round-trip even with nothing staged. *)
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 64) in
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  let log = Cl_log.create ~capacity:8 ~qp ~cost:Kona_rdma.Cost.default
      ~resolve:(fun ~node:_ -> node) () in
  Cl_log.flush log;
  check_int "fence before any traffic is free" 0 (Clock.now clock);
  Cl_log.append_run log ~node:0 ~raddr:0 ~data:(String.make 64 'a');
  Cl_log.flush log;
  let after_real_fence = Clock.now clock in
  check_bool "real fence costs time" true (after_real_fence > 0);
  Cl_log.flush log;
  check_int "empty fence after a flush advances the clock by zero"
    after_real_fence (Clock.now clock);
  let ack = List.assoc "ack" (Cl_log.breakdown_ns log) in
  check_int "exactly one ack charged"
    (int_of_float Kona_rdma.Cost.default.Kona_rdma.Cost.ack_ns) ack

let prop_cl_log_breakdown_sums_to_clock =
  (* Phase attribution is a partition: every nanosecond the log charges to
     its clock lands in exactly one of bitmap/copy/rdma/ack, so on a
     standalone log (nothing else touching the clock) the phases sum to the
     clock exactly — the double-charge of wire serialization would break
     this. *)
  QCheck.Test.make ~name:"cl_log breakdown partitions the clock" ~count:50
    QCheck.(
      pair (int_range 1 16)
        (list_of_size Gen.(1 -- 60) (pair (int_bound 199) (int_range 1 4))))
    (fun (capacity, runs) ->
      let node = Memory_node.create ~id:0 ~capacity:(Units.mib 1) in
      let clock = Clock.create () in
      let qp = Qp.create ~clock () in
      let log =
        Cl_log.create ~capacity ~qp ~cost:Kona_rdma.Cost.default
          ~resolve:(fun ~node:_ -> node)
          ()
      in
      List.iteri
        (fun i (slot, lines) ->
          Cl_log.note_bitmap_scan log ~lines:Units.lines_per_page;
          Cl_log.append_run log ~node:0 ~raddr:(slot * 256)
            ~data:(String.make (lines * 64) (Char.chr (Char.code 'a' + (i mod 26))));
          if i mod 7 = 0 then Cl_log.flush log)
        runs;
      Cl_log.flush log;
      Cl_log.flush log;
      let total =
        List.fold_left (fun acc (_, ns) -> acc + ns) 0 (Cl_log.breakdown_ns log)
      in
      total = Clock.now clock)

let test_dirty_tracker_orphan_path () =
  (* A writeback for a page that is not FMem-resident (the race of §4.4)
     must be written through immediately, not lost. *)
  let node = Memory_node.create ~id:0 ~capacity:(Units.mib 1) in
  let controller = Rack_controller.create ~slab_size:(Units.kib 64) () in
  Rack_controller.register_node controller node;
  let rm = Resource_manager.create ~controller () in
  Resource_manager.ensure_backed rm ~addr:0 ~len:(Units.kib 64);
  let qp = Qp.create ~clock:(Clock.create ()) () in
  let log = Cl_log.create ~qp ~cost:Kona_rdma.Cost.default
      ~resolve:(fun ~node:_ -> node) () in
  let evictor =
    Eviction_handler.create ~log ~rm
      ~read_local:(fun ~addr:_ ~len -> String.make len 'o')
      ~snoop:(fun ~page:_ -> [])
      ()
  in
  let fmem = Kona_coherence.Fmem.create ~pages:4 () in
  let tracker =
    Dirty_tracker.create ~fmem
      ~on_orphan:(fun ~line_addr -> Eviction_handler.write_line_through evictor ~line_addr)
      ()
  in
  (* page 3 is not resident in fmem: this writeback is an orphan *)
  Dirty_tracker.on_writeback tracker ~addr:(3 * Units.page_size);
  check_int "orphan counted" 1 (Dirty_tracker.orphans tracker);
  check_int "orphan shipped immediately" 1 (Memory_node.lines_received node);
  Alcotest.(check string) "orphan data landed" (String.make 64 'o')
    (Memory_node.peek node ~addr:(3 * Units.page_size) ~len:64)

let test_memory_node_validation () =
  let node = Memory_node.create ~id:0 ~capacity:(Units.kib 8) in
  let a = Memory_node.reserve node ~size:100 in
  check_int "reservation page-aligned" 0 (a mod Units.page_size);
  check_int "used rounded up" Units.page_size (Memory_node.used node);
  ignore (Memory_node.reserve node ~size:Units.page_size);
  check_bool "oom" true
    (try
       ignore (Memory_node.reserve node ~size:1);
       false
     with Out_of_memory -> true);
  check_bool "oob write rejected" true
    (try
       Memory_node.write node ~addr:(Units.kib 8) ~data:"x";
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Runtime: end-to-end *)

let make_runtime ?(fmem_pages = 64) ?(capacity = Units.mib 4) () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 8));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  (runtime, heap, controller)

let check_integrity runtime heap controller =
  (* After drain, every backed page within the arena matches the heap. *)
  let rm = Runtime.resource_manager runtime in
  let mismatches = ref 0 in
  let pages = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      if base + Units.page_size <= Heap.capacity heap then begin
        incr pages;
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then incr mismatches
      end);
  check_bool "some pages backed" true (!pages > 0);
  check_int "remote memory identical to heap" 0 !mismatches

let test_runtime_basic_flow () =
  let runtime, heap, controller = make_runtime () in
  let a = Heap.alloc heap (Units.kib 8) in
  Heap.write_u64 heap a 42;
  Heap.write_u64 heap (a + 4096) 43;
  check_int "reads back through runtime" 42 (Heap.read_u64 heap a);
  Runtime.drain runtime;
  check_integrity runtime heap controller;
  let stats = Runtime.stats runtime in
  check_bool "fetched pages" true (List.assoc "fetch.pages" stats > 0);
  check_bool "tracked or evicted lines" true (List.assoc "log.lines" stats > 0)

let test_runtime_integrity_under_pressure () =
  (* Tiny FMem (16 pages) forces heavy eviction; data must survive. *)
  let runtime, heap, controller = make_runtime ~fmem_pages:16 () in
  let rng = Kona_util.Rng.create ~seed:7 in
  let base = Heap.alloc heap (Units.kib 512) in
  for _ = 1 to 20_000 do
    let offset = Kona_util.Rng.int rng (Units.kib 512 - 8) in
    Heap.write_u64 heap (base + offset) (Kona_util.Rng.int rng 1_000_000)
  done;
  Runtime.drain runtime;
  check_integrity runtime heap controller;
  let stats = Runtime.stats runtime in
  check_bool "evictions happened" true (List.assoc "evict.pages" stats > 50)

let test_runtime_workload_integrity () =
  (* Full workload (Redis-Rand smoke) under eviction pressure. *)
  let spec = Workloads.redis_rand in
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 128 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke)
      ~sink:(Runtime.sink runtime) ()
  in
  heap_ref := Some heap;
  spec.Workloads.run Workloads.Smoke ~heap ~seed:3;
  Runtime.drain runtime;
  check_integrity runtime heap controller;
  (* Cache-line eviction must ship far fewer bytes than page-grain would:
     evicted lines vs evicted pages * 64 lines. *)
  let stats = Runtime.stats runtime in
  let lines = List.assoc "evict.lines" stats in
  let pages = List.assoc "evict.pages" stats in
  check_bool "line granularity saves traffic" true (lines < pages * Units.lines_per_page)

let test_runtime_clean_pages_silent () =
  let runtime, heap, _controller = make_runtime ~fmem_pages:16 () in
  let base = Heap.alloc heap (Units.kib 512) in
  (* Touch many pages read-only; they must evict silently. *)
  for p = 0 to 127 do
    ignore (Heap.read_u64 heap (base + (p * Units.page_size)))
  done;
  Runtime.drain runtime;
  let stats = Runtime.stats runtime in
  check_bool "clean pages seen" true (List.assoc "evict.clean_pages" stats > 0);
  check_int "nothing written over the wire for reads" 0 (List.assoc "log.lines" stats)

let test_runtime_clocks_advance () =
  let runtime, heap, _ = make_runtime () in
  let a = Heap.alloc heap 4096 in
  Heap.write_u64 heap a 1;
  check_bool "app clock advanced" true (Runtime.app_ns runtime > 0);
  Runtime.drain runtime;
  check_bool "bg clock advanced on eviction" true (Runtime.bg_ns runtime > 0);
  check_bool "elapsed = max" true
    (Runtime.elapsed_ns runtime = max (Runtime.app_ns runtime) (Runtime.bg_ns runtime))

let prop_runtime_integrity_random_ops =
  (* Any interleaving of reads/writes over a small region, driven through
     the full runtime with a tiny cache, drains to byte-identical remote
     memory. *)
  QCheck.Test.make ~name:"runtime integrity under random op sequences" ~count:25
    QCheck.(list_of_size Gen.(20 -- 200) (pair (int_bound (Units.kib 128 - 9)) bool))
    (fun ops ->
      let runtime, heap, controller = make_runtime ~fmem_pages:8 () in
      let base = Heap.alloc heap (Units.kib 128) in
      List.iteri
        (fun i (off, write) ->
          if write then Heap.write_u64 heap (base + off) i
          else ignore (Heap.read_u64 heap (base + off)))
        ops;
      Runtime.drain runtime;
      let rm = Runtime.resource_manager runtime in
      let ok = ref true in
      Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
          let page_base = vpage * Units.page_size in
          if page_base + Units.page_size <= Heap.capacity heap then begin
            let local = Heap.peek_bytes heap page_base Units.page_size in
            let remote =
              Memory_node.peek (Rack_controller.node controller ~id:node)
                ~addr:remote_addr ~len:Units.page_size
            in
            if local <> remote then ok := false
          end);
      !ok)

let test_drain_invariant_with_windowed_qp () =
  (* The end-to-end integrity invariant must be insensitive to the timing
     knobs: windowed (sq_depth 1 and 4) and selectively signaled eviction
     QPs reorder nothing, only reshape when time passes. *)
  List.iter
    (fun sq_depth ->
      let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
      Rack_controller.register_node controller
        (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
      Rack_controller.register_node controller
        (Memory_node.create ~id:1 ~capacity:(Units.mib 8));
      let heap_ref = ref None in
      let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
      let config =
        { Runtime.default_config with fmem_pages = 16; sq_depth; signal_interval = 4 }
      in
      let runtime = Runtime.create ~config ~controller ~read_local () in
      let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
      heap_ref := Some heap;
      let rng = Kona_util.Rng.create ~seed:13 in
      let base = Heap.alloc heap (Units.kib 256) in
      for _ = 1 to 10_000 do
        Heap.write_u64 heap
          (base + Kona_util.Rng.int rng (Units.kib 256 - 8))
          (Kona_util.Rng.int rng 1_000_000)
      done;
      Runtime.drain runtime;
      check_integrity runtime heap controller;
      match sq_depth with
      | Some 1 ->
          check_bool "depth-1 window stalled the evictor" true
            (List.assoc "evict.window_stalls" (Runtime.stats runtime) > 0)
      | _ -> ())
    [ Some 1; Some 4; None ]

let test_runtime_breakdown_matches_bg_clock () =
  (* kv-uniform (Redis-Rand): with prefetch off, only the CL log charges
     the background clock, so the Fig. 11c phases must add up to it —
     within 1% to allow rounding, in practice exactly. *)
  let spec = Workloads.find "kv-uniform" in
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 16));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 128 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity Workloads.Smoke)
      ~sink:(Runtime.sink runtime) ()
  in
  heap_ref := Some heap;
  spec.Workloads.run Workloads.Smoke ~heap ~seed:3;
  Runtime.drain runtime;
  let breakdown = Cl_log.breakdown_ns (Runtime.cl_log runtime) in
  let total = List.fold_left (fun acc (_, ns) -> acc + ns) 0 breakdown in
  let bg = Runtime.bg_ns runtime in
  check_bool "bg clock saw eviction work" true (bg > 0);
  check_bool "phases sum to the bg clock within 1%" true
    (abs (total - bg) * 100 <= bg)

let test_runtime_multi_node_distribution () =
  (* Small slabs across two nodes: eviction logs must split per node and
     both nodes must receive their share. *)
  let controller = Rack_controller.create ~slab_size:(Units.kib 64) () in
  let n0 = Memory_node.create ~id:0 ~capacity:(Units.mib 8) in
  let n1 = Memory_node.create ~id:1 ~capacity:(Units.mib 8) in
  Rack_controller.register_node controller n0;
  Rack_controller.register_node controller n1;
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 16 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  let base = Heap.alloc heap (Units.mib 1) in
  for p = 0 to (Units.mib 1 / Units.page_size) - 1 do
    Heap.write_u64 heap (base + (p * Units.page_size)) p
  done;
  Runtime.drain runtime;
  check_bool "node 0 received lines" true (Memory_node.lines_received n0 > 0);
  check_bool "node 1 received lines" true (Memory_node.lines_received n1 > 0);
  check_integrity runtime heap controller

(* ------------------------------------------------------------------ *)
(* Replication *)

let test_replication_mirrors_identical () =
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 8));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let config = { Runtime.default_config with fmem_pages = 16; replicas = 2 } in
  let runtime = Runtime.create ~config ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  let base = Heap.alloc heap (Units.kib 256) in
  let rng = Kona_util.Rng.create ~seed:11 in
  for _ = 1 to 5_000 do
    Heap.write_u64 heap (base + (Kona_util.Rng.int rng (Units.kib 256 - 8))) 7
  done;
  Runtime.drain runtime;
  check_integrity runtime heap controller;
  match Runtime.replication runtime with
  | None -> Alcotest.fail "replication must be active"
  | Some r ->
      check_int "degree" 2 (Replication.degree r);
      check_int "no divergent mirrors" 0 (Replication.divergent_mirrors r ~controller);
      let lines = List.assoc "log.lines" (Runtime.stats runtime) in
      check_int "each line on both mirrors" (2 * lines) (Replication.lines_replicated r)

let test_replication_targets () =
  let controller = Rack_controller.create () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:3 ~capacity:(Units.mib 1));
  let r = Replication.create ~degree:2 ~controller in
  check_int "two mirrors for node 3" 2 (List.length (Replication.targets r ~node:3));
  check_int "no mirrors for unknown node" 0 (List.length (Replication.targets r ~node:9))

(* ------------------------------------------------------------------ *)
(* Failure injection: outages and MCEs *)

let test_outage_delays_traffic () =
  let nic = Kona_rdma.Nic.create () in
  Kona_rdma.Nic.inject_outage nic ~at:0 ~duration:1_000_000;
  let clock = Clock.create () in
  let qp = Qp.create ~nic ~clock () in
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Qp.wait_idle qp;
  check_bool "completion after outage lifts" true (Clock.now clock > 1_000_000)

let make_runtime_with_nic ?(config = Runtime.default_config) nic =
  let controller = Rack_controller.create ~slab_size:(Units.kib 256) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 8));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let runtime = Runtime.create ~config ~nic ~controller ~read_local () in
  let heap = Heap.create ~capacity:(Units.mib 4) ~sink:(Runtime.sink runtime) () in
  heap_ref := Some heap;
  (runtime, heap, controller)

let test_mce_on_outage () =
  let nic = Kona_rdma.Nic.create () in
  (* Land the outage mid-run, on the demand-fetch path (the first microsecond
     is control-path slab allocation). *)
  Kona_rdma.Nic.inject_outage nic ~at:(Units.us 50) ~duration:(Units.ms 2);
  let config =
    { Runtime.default_config with fmem_pages = 16; mce_threshold_ns = Some (Units.us 100) }
  in
  let runtime, heap, controller = make_runtime_with_nic ~config nic in
  let base = Heap.alloc heap (Units.kib 128) in
  for p = 0 to 31 do
    Heap.write_u64 heap (base + (p * Units.page_size)) p
  done;
  Runtime.drain runtime;
  let stats = Runtime.stats runtime in
  check_bool "mce raised during outage" true (List.assoc "mce.raised" stats >= 1);
  check_bool "but not on every fetch" true
    (List.assoc "mce.raised" stats < List.assoc "fetch.pages" stats);
  (* The application recovered and data is intact. *)
  check_integrity runtime heap controller

let test_no_mce_without_outage () =
  let nic = Kona_rdma.Nic.create () in
  let config =
    { Runtime.default_config with fmem_pages = 16; mce_threshold_ns = Some (Units.us 100) }
  in
  let runtime, heap, _ = make_runtime_with_nic ~config nic in
  let base = Heap.alloc heap (Units.kib 64) in
  for p = 0 to 15 do
    Heap.write_u64 heap (base + (p * Units.page_size)) p
  done;
  check_int "no mce on healthy network" 0
    (List.assoc "mce.raised" (Runtime.stats runtime))

(* ------------------------------------------------------------------ *)
(* Prefetcher *)

let test_prefetcher_stream_detection () =
  let requested = ref [] in
  let p = Prefetcher.create ~depth:2 ~on_prefetch:(fun ~vpage -> requested := vpage :: !requested) () in
  Prefetcher.observe_miss p ~vpage:10;
  Alcotest.(check (list int)) "first miss registers a stream" [] !requested;
  Prefetcher.observe_miss p ~vpage:11;
  Alcotest.(check (list int)) "second sequential miss prefetches ahead" [ 13; 12 ] !requested;
  Prefetcher.observe_miss p ~vpage:12;
  (* 13 already requested: only 14 is new. *)
  Alcotest.(check (list int)) "no duplicate requests" [ 14; 13; 12 ] !requested;
  check_int "issued" 3 (Prefetcher.issued p)

let test_prefetcher_random_misses_quiet () =
  let requested = ref 0 in
  let p = Prefetcher.create ~on_prefetch:(fun ~vpage:_ -> incr requested) () in
  let rng = Kona_util.Rng.create ~seed:5 in
  for _ = 1 to 200 do
    Prefetcher.observe_miss p ~vpage:(Kona_util.Rng.int rng 1_000_000)
  done;
  check_bool "random stream triggers (almost) nothing" true (!requested < 10)

let test_prefetcher_stride_policy () =
  let requested = ref [] in
  let p =
    Prefetcher.create ~policy:Prefetcher.Majority_stride ~depth:2
      ~on_prefetch:(fun ~vpage -> requested := vpage :: !requested)
      ()
  in
  (* A stride-3 scan: after the history window fills, prefetches run
     3 and 6 pages ahead. *)
  for i = 0 to 11 do
    Prefetcher.observe_miss p ~vpage:(100 + (3 * i))
  done;
  check_bool "stride detected" true (Prefetcher.issued p > 0);
  check_bool "requests are stride-aligned ahead" true
    (List.for_all (fun v -> (v - 100) mod 3 = 0) !requested);
  (* Next_page policy never catches a stride-3 scan. *)
  let quiet = ref 0 in
  let np = Prefetcher.create ~on_prefetch:(fun ~vpage:_ -> incr quiet) () in
  for i = 0 to 11 do
    Prefetcher.observe_miss np ~vpage:(100 + (3 * i))
  done;
  check_int "next-page blind to strides" 0 !quiet

let test_prefetcher_bounded_dedup_table () =
  let requested = ref [] in
  let p =
    Prefetcher.create ~policy:Prefetcher.Majority_stride ~depth:2 ~requested_cap:8
      ~on_prefetch:(fun ~vpage -> requested := vpage :: !requested)
      ()
  in
  (* A long stride-1 scan used to grow the dedup table one entry per
     prefetched page, forever. *)
  for i = 0 to 9_999 do
    Prefetcher.observe_miss p ~vpage:i
  done;
  check_bool "scan prefetched" true (Prefetcher.issued p > 1_000);
  check_bool "dedup table stays within its cap" true
    (Prefetcher.requested_pending p <= 8);
  (* Eviction clears the entry, so the page can be prefetched again. *)
  let before = Prefetcher.issued p in
  requested := [];
  Prefetcher.forget p ~vpage:10_001;
  for i = 10_100 to 10_120 do
    Prefetcher.observe_miss p ~vpage:i
  done;
  check_bool "new stream keeps prefetching after forget" true
    (Prefetcher.issued p > before)

let test_ktracker_pml_model () =
  let heap = Heap.create ~capacity:(Units.mib 1) ~sink:Access.Tap.ignore () in
  let tracker = Ktracker.create ~heap () in
  Heap.set_sink heap (Ktracker.sink tracker);
  let a = Heap.alloc heap (Units.mib 0 + Units.kib 512) in
  (* Dirty 100 pages: well under one PML buffer. *)
  for page = 0 to 99 do
    Heap.write_u64 heap (a + (page * Units.page_size)) page
  done;
  Ktracker.close_window tracker ~window:0;
  let cost = Cost_model.default in
  check_int "one PML drain" cost.Cost_model.pml_drain_ns
    (Ktracker.pml_overhead_ns ~cost tracker);
  check_bool "PML far cheaper than write protection" true
    (10 * Ktracker.pml_overhead_ns ~cost tracker < Ktracker.wp_overhead_ns ~cost tracker)

let test_runtime_prefetch_integrity () =
  let nic = Kona_rdma.Nic.create () in
  let config = { Runtime.default_config with fmem_pages = 32; prefetch = true } in
  let runtime, heap, controller = make_runtime_with_nic ~config nic in
  let base = Heap.alloc heap (Units.kib 512) in
  (* Sequential write sweep: prefetches fire, evictions happen, data must
     survive. *)
  for p = 0 to 127 do
    Heap.write_u64 heap (base + (p * Units.page_size)) (p * 3)
  done;
  Runtime.drain runtime;
  check_integrity runtime heap controller;
  let stats = Runtime.stats runtime in
  check_bool "prefetches issued" true (List.assoc "prefetch.issued" stats > 10);
  check_bool "some useful" true (List.assoc "prefetch.useful" stats > 0)

(* ------------------------------------------------------------------ *)
(* Alloc_lib *)

let test_alloc_lib () =
  let c = controller_with_nodes () in
  let rm = Resource_manager.create ~controller:c () in
  let a = Alloc_lib.create ~rm () in
  let p = Alloc_lib.malloc a 100 in
  check_bool "backed" true (Resource_manager.translate rm ~vaddr:p <> None);
  let q = Alloc_lib.malloc a ~align:64 100 in
  check_int "aligned" 0 (q mod 64);
  Alloc_lib.free a ~addr:p ~len:100;
  check_int "exact-size reuse" p (Alloc_lib.malloc a 100);
  check_bool "live accounting" true (Alloc_lib.live_bytes a <= Alloc_lib.allocated_bytes a)

(* ------------------------------------------------------------------ *)
(* KCacheSim *)

let test_kcachesim_amat_ordering () =
  let counts =
    Kcachesim.simulate ~spec:Workloads.redis_rand ~scale:Workloads.Smoke ~seed:11
      ~cache_frac:0.25 ()
  in
  let cost = Cost_model.default in
  let kona = Kcachesim.amat_ns ~cost ~profile:(Cost_model.kona cost) counts in
  let kona_main = Kcachesim.amat_ns ~cost ~profile:(Cost_model.kona_main cost) counts in
  let legoos = Kcachesim.amat_ns ~cost ~profile:(Cost_model.legoos cost) counts in
  let infiniswap = Kcachesim.amat_ns ~cost ~profile:(Cost_model.infiniswap cost) counts in
  check_bool "counts conserve accesses" true
    (counts.Kcachesim.l1_hits + counts.Kcachesim.l2_hits + counts.Kcachesim.llc_hits
     + counts.Kcachesim.dram_hits + counts.Kcachesim.remote_fetches
    = counts.Kcachesim.line_accesses);
  check_bool "infiniswap worst" true (infiniswap > legoos);
  check_bool "legoos worse than kona" true (legoos > kona);
  check_bool "kona-main best" true (kona > kona_main)

let test_kcachesim_cache_size_effect () =
  (* Shrink the CPU caches so the DRAM-cache stage sees real traffic at
     Smoke scale (at Full scale the footprint dwarfs the LLC naturally). *)
  let cache_config =
    {
      Kona_cachesim.Hierarchy.l1 = { Kona_cachesim.Hierarchy.size = Units.kib 4; assoc = 2 };
      l2 = { Kona_cachesim.Hierarchy.size = Units.kib 8; assoc = 2 };
      llc = { Kona_cachesim.Hierarchy.size = Units.kib 16; assoc = 4 };
    }
  in
  let at frac =
    Kcachesim.simulate ~cache_config ~spec:Workloads.redis_rand ~scale:Workloads.Smoke
      ~seed:11 ~cache_frac:frac ()
  in
  let small = at 0.1 and big = at 1.0 in
  check_bool "bigger cache, fewer remote fetches" true
    (big.Kcachesim.remote_fetches < small.Kcachesim.remote_fetches);
  let cost = Cost_model.default in
  let profile = Cost_model.legoos cost in
  check_bool "bigger cache, lower AMAT" true
    (Kcachesim.amat_ns ~cost ~profile big < Kcachesim.amat_ns ~cost ~profile small)

let test_kcachesim_block_size_tradeoff () =
  (* Fig. 8d's mechanism: at a fixed cache size, tiny blocks miss spatial
     locality (more remote fetches); block size can't exceed the benefit. *)
  let cache_config =
    {
      Kona_cachesim.Hierarchy.l1 = { Kona_cachesim.Hierarchy.size = Units.kib 4; assoc = 2 };
      l2 = { Kona_cachesim.Hierarchy.size = Units.kib 8; assoc = 2 };
      llc = { Kona_cachesim.Hierarchy.size = Units.kib 16; assoc = 4 };
    }
  in
  let at block =
    Kcachesim.simulate ~cache_config ~block ~spec:Workloads.redis_rand
      ~scale:Workloads.Smoke ~seed:11 ~cache_frac:0.5 ()
  in
  let tiny = at 64 and page = at 4096 in
  check_bool "64B blocks fetch far more often" true
    (tiny.Kcachesim.remote_fetches > 2 * page.Kcachesim.remote_fetches);
  check_bool "bad block size rejected" true
    (try
       ignore (at 100);
       false
     with Invalid_argument _ -> true)

let test_runtime_fetch_latency_stats () =
  let runtime, heap, _ = make_runtime () in
  let a = Heap.alloc heap (Units.kib 64) in
  for p = 0 to 15 do
    Heap.write_u64 heap (a + (p * Units.page_size)) p
  done;
  let stats = Runtime.stats runtime in
  let p50 = List.assoc "fetch.p50_ns" stats and p99 = List.assoc "fetch.p99_ns" stats in
  check_bool "p50 in RDMA range" true (p50 > 1_000 && p50 < 100_000);
  check_bool "p99 >= p50" true (p99 >= p50)

(* ------------------------------------------------------------------ *)
(* KTracker *)

let test_ktracker_diff () =
  let heap = Heap.create ~capacity:(Units.mib 1) ~sink:Access.Tap.ignore () in
  let tracker = Ktracker.create ~heap () in
  Heap.set_sink heap (Ktracker.sink tracker);
  let a = Heap.alloc heap (Units.kib 16) in
  Heap.write_u64 heap a 1;
  Heap.write_u64 heap (a + 64) 2;
  Heap.write_u64 heap (a + 8192) 3;
  Ktracker.close_window tracker ~window:0;
  (match Ktracker.windows tracker with
  | [ w ] ->
      check_int "dirty lines" 3 w.Ktracker.dirty_lines;
      check_int "dirty pages" 2 w.Ktracker.dirty_pages;
      check_int "wp faults" 2 w.Ktracker.wp_faults;
      check_int "no invalidations in first window" 0 w.Ktracker.tlb_invalidations;
      Alcotest.(check (float 1e-9)) "amp ratio = pages*4096 / lines*64"
        (2. *. 4096. /. (3. *. 64.))
        (Ktracker.amp_ratio w)
  | _ -> Alcotest.fail "expected one window");
  (* Second window: silent rewrite (same value) is NOT dirty to a
     snapshot-diff tracker, but still takes a wp fault. *)
  Heap.write_u64 heap a 1;
  Ktracker.close_window tracker ~window:1;
  match Ktracker.windows tracker with
  | [ _; w ] ->
      check_int "silent write not dirty" 0 w.Ktracker.dirty_lines;
      check_int "wp fault still taken" 1 w.Ktracker.wp_faults;
      check_int "re-protection invalidations" 2 w.Ktracker.tlb_invalidations
  | _ -> Alcotest.fail "expected two windows"

let test_ktracker_speedup_model () =
  let heap = Heap.create ~capacity:(Units.mib 1) ~sink:Access.Tap.ignore () in
  let tracker = Ktracker.create ~heap () in
  Heap.set_sink heap (Ktracker.sink tracker);
  let a = Heap.alloc heap (Units.kib 64) in
  for p = 0 to 15 do
    Heap.write_u64 heap (a + (p * Units.page_size)) p
  done;
  Ktracker.close_window tracker ~window:0;
  let cost = Cost_model.default in
  let overhead = Ktracker.wp_overhead_ns ~cost tracker in
  check_int "16 faults worth" (16 * cost.Cost_model.minor_fault_ns) overhead;
  let speedup = Ktracker.speedup_percent ~cost ~app_ns:overhead tracker in
  Alcotest.(check (float 1e-6)) "100% when overhead = app time" 100. speedup

(* ------------------------------------------------------------------ *)
(* Cost model / poller *)

let test_cost_model_profiles () =
  let cost = Cost_model.default in
  let p_kona = Cost_model.kona cost in
  let p_legoos = Cost_model.legoos cost in
  let p_inf = Cost_model.infiniswap cost in
  check_bool "kona remote ~ rdma" true (p_kona.Cost_model.remote_ns < 4_000.);
  check_bool "legoos 10us" true (p_legoos.Cost_model.remote_ns = 10_000.);
  check_bool "infiniswap 40us" true (p_inf.Cost_model.remote_ns = 40_000.);
  check_bool "fmem slower than cmem" true
    (p_kona.Cost_model.dram_cache_ns > (Cost_model.kona_main cost).Cost_model.dram_cache_ns)

let test_poller () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  let poller = Poller.create () in
  Poller.register poller ~name:"evict" qp;
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Alcotest.(check (list (pair string int))) "nothing ready" [] (Poller.poll poller);
  Clock.advance clock 1_000_000;
  Alcotest.(check (list (pair string int))) "reaped" [ ("evict", 1) ] (Poller.poll poller);
  check_int "total reaped" 1 (Poller.reaped poller)

let () =
  Alcotest.run "kona_core"
    [
      ("slab", [ Alcotest.test_case "translation" `Quick test_slab_translation ]);
      ( "controller",
        [
          Alcotest.test_case "round robin" `Quick test_controller_round_robin;
          Alcotest.test_case "skips full nodes" `Quick test_controller_skips_full_nodes;
          Alcotest.test_case "oom" `Quick test_controller_oom;
          Alcotest.test_case "occupancy" `Quick test_controller_occupancy;
          Alcotest.test_case "skips crashed nodes" `Quick
            test_controller_skips_crashed_nodes;
          Alcotest.test_case "quota admission" `Quick test_controller_quota;
        ] );
      ( "resource_manager",
        [
          Alcotest.test_case "batching" `Quick test_resource_manager_batching;
          Alcotest.test_case "spanning ranges" `Quick test_resource_manager_spanning;
        ] );
      ( "cl_log",
        [
          Alcotest.test_case "log receiver" `Quick test_memory_node_log_receiver;
          Alcotest.test_case "roundtrip" `Quick test_cl_log_roundtrip;
          Alcotest.test_case "autoflush" `Quick test_cl_log_autoflush;
          Alcotest.test_case "empty flush + node split" `Quick
            test_cl_log_empty_flush_and_split;
          Alcotest.test_case "empty fence costs nothing" `Quick
            test_cl_log_empty_fence_costs_nothing;
          Alcotest.test_case "orphan write-through" `Quick test_dirty_tracker_orphan_path;
          Alcotest.test_case "memory node validation" `Quick test_memory_node_validation;
        ] );
      ( "cl_log-props",
        [ QCheck_alcotest.to_alcotest ~long:false prop_cl_log_breakdown_sums_to_clock ] );
      ( "runtime-props",
        [ QCheck_alcotest.to_alcotest ~long:false prop_runtime_integrity_random_ops ] );
      ( "runtime",
        [
          Alcotest.test_case "basic flow" `Quick test_runtime_basic_flow;
          Alcotest.test_case "integrity under pressure" `Quick
            test_runtime_integrity_under_pressure;
          Alcotest.test_case "workload integrity (Redis-Rand)" `Quick
            test_runtime_workload_integrity;
          Alcotest.test_case "clean pages silent" `Quick test_runtime_clean_pages_silent;
          Alcotest.test_case "multi-node distribution" `Quick
            test_runtime_multi_node_distribution;
          Alcotest.test_case "clocks" `Quick test_runtime_clocks_advance;
          Alcotest.test_case "drain invariant with windowed QPs" `Quick
            test_drain_invariant_with_windowed_qp;
          Alcotest.test_case "breakdown sums to bg clock (kv-uniform)" `Quick
            test_runtime_breakdown_matches_bg_clock;
        ] );
      ( "replication",
        [
          Alcotest.test_case "mirrors identical" `Quick test_replication_mirrors_identical;
          Alcotest.test_case "targets" `Quick test_replication_targets;
        ] );
      ( "failures",
        [
          Alcotest.test_case "outage delays traffic" `Quick test_outage_delays_traffic;
          Alcotest.test_case "mce on outage" `Quick test_mce_on_outage;
          Alcotest.test_case "no mce without outage" `Quick test_no_mce_without_outage;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "stream detection" `Quick test_prefetcher_stream_detection;
          Alcotest.test_case "random misses quiet" `Quick test_prefetcher_random_misses_quiet;
          Alcotest.test_case "runtime prefetch integrity" `Quick
            test_runtime_prefetch_integrity;
          Alcotest.test_case "majority-stride policy" `Quick test_prefetcher_stride_policy;
          Alcotest.test_case "bounded dedup table" `Quick
            test_prefetcher_bounded_dedup_table;
        ] );
      ("pml", [ Alcotest.test_case "drain model" `Quick test_ktracker_pml_model ]);
      ("alloc_lib", [ Alcotest.test_case "malloc/free" `Quick test_alloc_lib ]);
      ( "kcachesim",
        [
          Alcotest.test_case "amat ordering" `Quick test_kcachesim_amat_ordering;
          Alcotest.test_case "cache size effect" `Quick test_kcachesim_cache_size_effect;
          Alcotest.test_case "block size tradeoff" `Quick test_kcachesim_block_size_tradeoff;
          Alcotest.test_case "fetch latency stats" `Quick test_runtime_fetch_latency_stats;
        ] );
      ( "ktracker",
        [
          Alcotest.test_case "snapshot diff" `Quick test_ktracker_diff;
          Alcotest.test_case "speedup model" `Quick test_ktracker_speedup_model;
        ] );
      ( "cost_model",
        [ Alcotest.test_case "profiles" `Quick test_cost_model_profiles ] );
      ("poller", [ Alcotest.test_case "poll" `Quick test_poller ]);
    ]
