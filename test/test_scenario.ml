(* Tests for kona_scenario: the episode grammar (round-trip property
   over every op kind), the seeded generator, the deterministic episode
   executor with its invariant registry, and the delta-debugging
   shrinker (including a planted cross-subsystem bug that must converge
   to a <= 3-op repro). *)

open Kona_scenario
module Rack = Kona_rack.Rack
module Fault_spec = Kona_faults.Fault_spec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Grammar *)

(* Every op kind — scenario ops, every probabilistic fault clause, and
   every rack op — composed in one spec string. *)
let kitchen_sink =
  "setup:tenants=2,nodes=3,cap=8388608,gbps=2,replicas=1,fmem=64,quantum=128,\
   seed=1,fseed=2,scrub=100us,verify=1,workloads=kv-seq|kv-uniform,\
   shares=2|1,quotas=0|1048576,policy=heat,fast=2,slowns=500ns,hb=20us,\
   lease=100us;run:n=100;\
   crash:id=1;flap:dur=20us;partition:dur=30us,nodes=0|2;bit-flip:p=0.25;torn-write:p=0.1;\
   stale-read:p=0.05;dup-deliver:p=0.2;wqe-drop:p=0.1;wqe-delay:p=0.1,ns=500;\
   rpc-timeout:p=0.05;quota:t=1,bytes=2097152;publish:pages=8;\
   shared:rounds=4;scrub;add;add:cap=4194304;drain:id=2;rebalance;\
   migrate-epoch"

let test_parse_kitchen_sink () =
  let t = Spec.parse_exn kitchen_sink in
  check_int "tenants" 2 t.Spec.setup.Spec.tenants;
  check_int "nodes" 3 t.Spec.setup.Spec.nodes;
  check_int "scrub" 100_000 t.Spec.setup.Spec.scrub_ns;
  Alcotest.(check (list string))
    "workloads"
    [ "kv-seq"; "kv-uniform" ]
    t.Spec.setup.Spec.workloads;
  check_int "hb" 20_000 t.Spec.setup.Spec.heartbeat_ns;
  check_int "lease" 100_000 t.Spec.setup.Spec.lease_ns;
  check_int "ops" 20 (List.length t.Spec.ops);
  (match t.Spec.ops with
  | Spec.Run { n = 100 } :: Spec.Crash { id = 1 } :: Spec.Flap { dur_ns = 20_000 } :: _
    ->
      ()
  | _ -> Alcotest.fail "unexpected head ops");
  (match List.rev t.Spec.ops with
  | Spec.Migrate_epoch :: Spec.Rebalance :: Spec.Drain { id = 2 }
    :: Spec.Add_node { capacity = Some 4194304 }
    :: Spec.Add_node { capacity = None } :: Spec.Scrub :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected tail ops");
  (* canonical rendering re-parses to the same value *)
  check_bool "round-trips" true (Spec.parse_exn (Spec.to_string t) = t)

let test_parse_defaults () =
  let t = Spec.parse_exn "setup:" in
  check_bool "defaults" true (t.Spec.setup = Spec.default_setup);
  check_int "no ops" 0 (List.length t.Spec.ops)

let test_parse_errors () =
  let bad s =
    match Spec.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "must start with setup" true (bad "run:n=5");
  check_bool "scheduled crash clause rejected" true
    (bad "setup:;node-crash@1ms:id=0");
  check_bool "scheduled flap clause rejected" true
    (bad "setup:;link-flap@1ms:dur=2ms");
  check_bool "scheduled partition clause rejected" true
    (bad "setup:;partition@1ms:dur=2ms,nodes=0");
  check_bool "lease below heartbeat rejected" true
    (bad "setup:hb=100us,lease=50us");
  check_bool "partition needs nodes" true (bad "setup:;partition:dur=2ms");
  check_bool "unknown op" true (bad "setup:;frobnicate");
  check_bool "unknown setup key" true (bad "setup:bogus=1");
  check_bool "bad duration" true (bad "setup:scrub=fast");
  check_bool "zero tenants" true (bad "setup:tenants=0");
  check_bool "empty share" true (bad "setup:shares=0")

(* Random well-formed specs survive a print/parse round trip.  Numeric
   fields are drawn from grids whose canonical rendering re-parses
   exactly (probabilities as k/1000, gbps as k/10). *)
let spec_gen =
  let open QCheck.Gen in
  let prob = map (fun k -> float_of_int k /. 1000.) (int_range 1 999) in
  let corrupt =
    oneof
      [
        map (fun p -> Fault_spec.Rpc_timeout { p }) prob;
        map (fun p -> Fault_spec.Wqe_drop { p }) prob;
        map2 (fun p delay_ns -> Fault_spec.Wqe_delay { p; delay_ns }) prob
          (int_range 1 100_000);
        map (fun p -> Fault_spec.Bit_flip { p }) prob;
        map (fun p -> Fault_spec.Torn_write { p }) prob;
        map (fun p -> Fault_spec.Stale_read { p }) prob;
        map (fun p -> Fault_spec.Dup_deliver { p }) prob;
      ]
  in
  let op =
    oneof
      [
        map (fun n -> Spec.Run { n = n + 1 }) (int_bound 5000);
        map (fun id -> Spec.Crash { id }) (int_bound 7);
        map (fun d -> Spec.Flap { dur_ns = d + 1 }) (int_bound 1_000_000);
        map2
          (fun d ids -> Spec.Partition { dur_ns = d + 1; ids })
          (int_bound 1_000_000)
          (list_size (int_range 1 3) (int_bound 7));
        map (fun c -> Spec.Corrupt c) corrupt;
        map2
          (fun tenant bytes -> Spec.Quota { tenant; bytes })
          (int_bound 3) (int_bound 100_000_000);
        map (fun p -> Spec.Publish { pages = p + 1 }) (int_bound 100);
        map (fun r -> Spec.Shared { rounds = r + 1 }) (int_bound 100);
        map (fun r -> Spec.Mwrite { rounds = r + 1 }) (int_bound 100);
        map (fun c -> Spec.Shm_rpc { calls = c + 1 }) (int_bound 100);
        pure Spec.Scrub;
        map
          (fun c -> Spec.Add_node { capacity = Option.map (( + ) 1) c })
          (opt (int_bound 100_000_000));
        map (fun id -> Spec.Drain { id }) (int_bound 7);
        pure Spec.Rebalance;
        pure Spec.Migrate_epoch;
      ]
  in
  let setup =
    let pool = [ "kv-seq"; "kv-uniform"; "kv-zipf"; "page-rank" ] in
    let* tenants = int_range 1 4 in
    let* nodes = int_range 1 5 in
    let* node_cap = int_range 1 200_000_000 in
    let* gbps = map (fun k -> float_of_int k /. 10.) (int_range 1 100) in
    let* replicas = int_range 0 2 in
    let* fmem = int_range 1 1024 in
    let* quantum = int_range 1 4096 in
    let* seed = int_bound 1_000_000 in
    let* fault_seed = int_bound 1_000_000 in
    let* scrub_ns = int_bound 10_000_000 in
    let* verify = bool in
    let* workloads = list_size (int_range 1 4) (oneofl pool) in
    let* shares = list_size (int_range 1 4) (int_range 1 9) in
    let* quotas = list_size (int_range 1 4) (int_bound 100_000_000) in
    let* policy = oneofl [ "first-fit"; "heat"; "centralized" ] in
    let* fast_nodes = int_bound 5 in
    let* slow_extra_ns = int_bound 10_000 in
    let* heartbeat_ns = oneofl [ 0; 0; 10_000; 50_000 ] in
    let* lease_ns = oneofl [ 50_000; 100_000; 200_000 ] in
    let+ writers = int_range 1 4 in
    {
      Spec.tenants;
      nodes;
      node_cap;
      gbps;
      replicas;
      fmem;
      quantum;
      seed;
      fault_seed;
      scrub_ns;
      verify;
      workloads;
      shares;
      quotas;
      policy;
      fast_nodes;
      slow_extra_ns;
      heartbeat_ns;
      lease_ns;
      writers;
    }
  in
  QCheck.Gen.map2
    (fun setup ops -> { Spec.setup; ops })
    setup
    (QCheck.Gen.list_size (QCheck.Gen.int_bound 20) op)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"scenario specs round-trip through to_string/parse"
    ~count:300
    (QCheck.make
       ~print:(fun t -> Spec.to_string t)
       spec_gen)
    (fun t -> Spec.parse_exn (Spec.to_string t) = t)

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generate_deterministic () =
  let a = Gen.generate ~seed:5 ~ops:12 in
  let b = Gen.generate ~seed:5 ~ops:12 in
  check_bool "same seed, same spec" true (a = b);
  check_string "same rendering" (Spec.to_string a) (Spec.to_string b);
  let c = Gen.generate ~seed:6 ~ops:12 in
  check_bool "different seed, different spec" true (a <> c)

let test_generate_round_trips () =
  for seed = 0 to 24 do
    let t = Gen.generate ~seed ~ops:12 in
    check_int "op count" 12 (List.length t.Spec.ops);
    (match t.Spec.ops with
    | Spec.Run _ :: _ -> ()
    | _ -> Alcotest.fail "first op must be a run slice");
    if Spec.parse_exn (Spec.to_string t) <> t then
      Alcotest.failf "seed %d does not round-trip: %s" seed (Spec.to_string t)
  done

(* ------------------------------------------------------------------ *)
(* Executor + invariants *)

let small_setup =
  {
    Spec.default_setup with
    Spec.node_cap = Kona_util.Units.mib 32;
    fmem = 64;
  }

let test_execute_deterministic () =
  let spec =
    {
      Spec.setup = small_setup;
      ops =
        [
          Spec.Run { n = 512 };
          Spec.Corrupt (Fault_spec.Bit_flip { p = 0.2 });
          Spec.Publish { pages = 8 };
          Spec.Shared { rounds = 4 };
          Spec.Scrub;
          Spec.Run { n = 512 };
        ];
    }
  in
  let a = Episode.execute spec in
  let b = Episode.execute spec in
  check_bool "no violations" true (Episode.passed a);
  check_bool "not aborted" true (a.Episode.oc_aborted = None);
  check_bool "fingerprint nonempty" true (a.Episode.oc_fingerprint <> "");
  check_string "bit-identical fingerprints" a.Episode.oc_fingerprint
    b.Episode.oc_fingerprint;
  check_bool "bit-identical integrity counters" true
    (a.Episode.oc_integrity = b.Episode.oc_integrity);
  (* the armed clause actually injected and was accounted *)
  check_bool "bit flips armed" true
    (List.assoc "integrity.flips_armed" a.Episode.oc_integrity > 0)

let test_execute_rack_ops () =
  let spec =
    {
      Spec.setup =
        { small_setup with Spec.tenants = 2; workloads = [ "kv-seq" ] };
      ops =
        [
          Spec.Run { n = 512 };
          Spec.Add_node { capacity = None };
          Spec.Quota { tenant = 1; bytes = Kona_util.Units.mib 24 };
          Spec.Drain { id = 0 };
          Spec.Run { n = 512 };
          Spec.Crash { id = 1 };
          Spec.Flap { dur_ns = 20_000 };
          Spec.Rebalance;
          Spec.Migrate_epoch;
        ];
    }
  in
  let o = Episode.execute spec in
  check_bool "not aborted" true (o.Episode.oc_aborted = None);
  (match o.Episode.oc_violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "unexpected violation [%s] %s" v.Invariants.inv
        v.Invariants.detail);
  match o.Episode.oc_result with
  | None -> Alcotest.fail "expected a finished episode"
  | Some r ->
      check_int "crash happened" 1 r.Rack.r_node_crashes;
      check_bool "drain moved pages" true (r.Rack.r_drained_pages > 0);
      check_int "ops applied" 3 r.Rack.r_ops_applied

(* Overlapping faults: a partition strikes while a node drain is in
   flight, under lease-based membership.  The drain is a resumable
   recovery task, so the partition interleaves with it instead of
   aborting it; the shadow-heap oracle and the membership invariants
   (at-most-one-primary, no-post-fence-write, recovery-convergence)
   check every op boundary. *)
let test_partition_mid_drain () =
  let spec =
    {
      Spec.setup =
        {
          small_setup with
          Spec.nodes = 3;
          replicas = 1;
          heartbeat_ns = 20_000;
          lease_ns = 100_000;
        };
      ops =
        [
          Spec.Run { n = 1024 };
          Spec.Drain { id = 1 };
          (* mid-drain: the drain task is pending when this window opens *)
          Spec.Partition { dur_ns = 300_000; ids = [ 0 ] };
          Spec.Run { n = 1024 };
          Spec.Run { n = 1024 };
        ];
    }
  in
  let a = Episode.execute spec in
  check_bool "not aborted" true (a.Episode.oc_aborted = None);
  (match a.Episode.oc_violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "unexpected violation [%s] %s" v.Invariants.inv
        v.Invariants.detail);
  (* the same overlapping schedule is bit-reproducible *)
  let b = Episode.execute spec in
  check_string "bit-identical fingerprints" a.Episode.oc_fingerprint
    b.Episode.oc_fingerprint

let test_registry_names () =
  List.iter
    (fun n ->
      check_bool (n ^ " registered") true (List.mem n Invariants.names))
    [
      "node-accounting";
      "quota-conservation";
      "placement-coherence";
      "shadow-heap";
      "integrity-accounting";
      "wfq-bounds";
      "at-most-one-primary";
      "no-post-fence-write";
      "recovery-convergence";
    ]

(* ------------------------------------------------------------------ *)
(* Shrinker *)

(* Pure syntactic oracle: fails iff the sequence still holds a crash op
   and at least two scrubs.  ddmin must strip everything else. *)
let test_shrink_syntactic () =
  let ops =
    [
      Spec.Run { n = 4096 };
      Spec.Scrub;
      Spec.Publish { pages = 16 };
      Spec.Crash { id = 0 };
      Spec.Run { n = 512 };
      Spec.Scrub;
      Spec.Rebalance;
      Spec.Scrub;
      Spec.Flap { dur_ns = 1_000_000 };
      Spec.Run { n = 256 };
    ]
  in
  let spec = { Spec.setup = Spec.default_setup; ops } in
  let oracle t =
    let crashes =
      List.length
        (List.filter (function Spec.Crash _ -> true | _ -> false) t.Spec.ops)
    in
    let scrubs =
      List.length
        (List.filter (function Spec.Scrub -> true | _ -> false) t.Spec.ops)
    in
    if crashes >= 1 && scrubs >= 2 then Some "synthetic" else None
  in
  let r = Shrink.run ~oracle spec in
  check_int "minimal op count" 3 (List.length r.Shrink.minimal.Spec.ops);
  check_bool "still fails" true (oracle r.Shrink.minimal = Some "synthetic");
  (* numeric-field phase: a failing run op halves down to n=1 *)
  let spec2 =
    {
      Spec.setup = Spec.default_setup;
      ops = [ Spec.Run { n = 4096 }; Spec.Scrub ];
    }
  in
  let oracle2 t =
    if List.exists (function Spec.Run _ -> true | _ -> false) t.Spec.ops then
      Some "run-present"
    else None
  in
  let r2 = Shrink.run ~oracle:oracle2 spec2 in
  check_bool "single minimal op" true
    (r2.Shrink.minimal.Spec.ops = [ Spec.Run { n = 1 } ])

let test_shrink_requires_failure () =
  let spec = { Spec.setup = Spec.default_setup; ops = [ Spec.Scrub ] } in
  check_bool "passing spec rejected" true
    (try
       ignore (Shrink.run ~oracle:(fun _ -> None) spec);
       false
     with Invalid_argument _ -> true)

(* Planted cross-subsystem bug: on every migrate-epoch op, leak one slab
   straight out of the rack controller (charged to tenant t0 but owned
   by no resource manager) — exactly the accounting drift the
   quota-conservation invariant exists to catch.  The shrinker must take
   a 16-op failing sequence down to a <= 3-op repro that still trips the
   same named invariant. *)
let planted_ops =
  [
    Spec.Run { n = 256 };
    Spec.Scrub;
    Spec.Quota { tenant = 0; bytes = Kona_util.Units.mib 24 };
    Spec.Run { n = 256 };
    Spec.Scrub;
    Spec.Publish { pages = 8 };
    Spec.Run { n = 512 };
    Spec.Quota { tenant = 0; bytes = Kona_util.Units.mib 26 };
    Spec.Migrate_epoch;
    Spec.Run { n = 256 };
    Spec.Scrub;
    Spec.Shared { rounds = 4 };
    Spec.Run { n = 256 };
    Spec.Scrub;
    Spec.Run { n = 256 };
    Spec.Scrub;
  ]

let plant _i op engine =
  match op with
  | Spec.Migrate_epoch ->
      ignore
        (Kona.Rack_controller.allocate_slab ~tenant:"t0"
           (Rack.controller engine) ~vaddr:0x5000_0000)
  | _ -> ()

let test_planted_bug_shrinks () =
  let spec = { Spec.setup = small_setup; ops = planted_ops } in
  check_bool "at least 15 ops" true (List.length spec.Spec.ops >= 15);
  let oracle t =
    match (Episode.execute ~plant ~check_end:false t).Episode.oc_violations with
    | [] -> None
    | v :: _ -> Some v.Invariants.inv
  in
  check_bool "planted bug detected" true
    (oracle spec = Some "quota-conservation");
  let r = Shrink.run ~oracle spec in
  check_bool
    (Printf.sprintf "minimal repro has <= 3 ops (got %d)"
       (List.length r.Shrink.minimal.Spec.ops))
    true
    (List.length r.Shrink.minimal.Spec.ops <= 3);
  check_bool "minimal repro still trips quota-conservation" true
    (oracle r.Shrink.minimal = Some "quota-conservation");
  (* the repro is a replayable spec line *)
  check_bool "repro round-trips" true
    (Spec.parse_exn (Spec.to_string r.Shrink.minimal) = r.Shrink.minimal)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kona_scenario"
    [
      ( "grammar",
        [
          Alcotest.test_case "kitchen sink" `Quick test_parse_kitchen_sink;
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest ~long:false prop_spec_roundtrip;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "round-trips" `Quick test_generate_round_trips;
        ] );
      ( "executor",
        [
          Alcotest.test_case "deterministic fingerprints" `Quick
            test_execute_deterministic;
          Alcotest.test_case "rack ops" `Quick test_execute_rack_ops;
          Alcotest.test_case "partition mid-drain" `Quick
            test_partition_mid_drain;
          Alcotest.test_case "registry names" `Quick test_registry_names;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "syntactic ddmin" `Quick test_shrink_syntactic;
          Alcotest.test_case "requires a failing spec" `Quick
            test_shrink_requires_failure;
          Alcotest.test_case "planted bug to minimal repro" `Quick
            test_planted_bug_shrinks;
        ] );
    ]
