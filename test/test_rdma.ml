(* Tests for Kona_rdma: the cost model's calibration properties and the QP
   batching/completion/contention semantics. *)

open Kona_rdma
module Clock = Kona_util.Clock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cost *)

let test_cost_calibration () =
  (* Paper §2.1: a 4KB RDMA operation is ~3us; small ops are close below. *)
  let c = Cost.default in
  let t4k = Cost.batch_ns c ~sizes:[ 4096 ] in
  check_bool "4KB op ~ 3us" true (t4k > 2_700 && t4k < 3_400);
  let t64 = Cost.batch_ns c ~sizes:[ 64 ] in
  check_bool "64B op ~ 2.9us" true (t64 > 2_500 && t64 < 3_100);
  check_bool "4KB slower than 64B" true (t4k > t64)

let test_cost_batching_amortizes () =
  let c = Cost.default in
  let batched = Cost.batch_ns c ~sizes:(List.init 16 (fun _ -> 64)) in
  let separate = 16 * Cost.batch_ns c ~sizes:[ 64 ] in
  check_bool "one linked batch beats 16 posts" true (batched * 3 < separate);
  check_int "empty batch is free" 0 (Cost.batch_ns c ~sizes:[])

let test_cost_wire_bytes () =
  let c = Cost.default in
  check_int "headers counted per WQE"
    ((2 * c.Cost.header_bytes) + 128)
    (Cost.wire_bytes c ~sizes:[ 64; 64 ])

let test_cost_memcpy_and_bitmap () =
  let c = Cost.default in
  check_bool "memcpy grows with size" true
    (Cost.memcpy_ns c ~bytes:4096 > Cost.memcpy_ns c ~bytes:64);
  check_bool "bitmap scan linear-ish" true
    (Cost.bitmap_scan_ns c ~lines:64 >= 4 * Cost.bitmap_scan_ns c ~lines:16)

let prop_cost_monotone =
  QCheck.Test.make ~name:"batch time monotone in payload" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Cost.batch_ns Cost.default ~sizes:[ lo ] <= Cost.batch_ns Cost.default ~sizes:[ hi ])

(* ------------------------------------------------------------------ *)
(* Qp *)

let test_qp_delivery_and_completion () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  let delivered = ref false in
  Qp.post qp
    [ Qp.wqe ~signaled:true ~deliver:(fun () -> delivered := true) Qp.Write ~len:4096 ];
  (* Completion-driven: the bytes land when the clock reaches the WQE's
     completion time, not at post. *)
  check_bool "not delivered at post" false !delivered;
  Alcotest.(check (list int)) "not complete yet (wire time pending)" []
    (Qp.poll qp ~max:8);
  check_bool "poll before completion does not deliver" false !delivered;
  Qp.wait_idle qp;
  check_bool "delivered at completion" true !delivered;
  check_bool "clock advanced past wire time" true (Clock.now clock > 2_500);
  check_int "verbs" 1 (Qp.verbs qp);
  check_int "posts" 1 (Qp.posts qp)

let test_qp_completion_ordered_delivery () =
  (* Deliveries fire in completion order as the clock crosses each finish
     time, whichever call (post/poll/wait_idle) moves the clock there. *)
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  Qp.post qp [ Qp.wqe ~signaled:true ~deliver:(mark "a") Qp.Write ~len:4096 ];
  Qp.post qp [ Qp.wqe ~signaled:true ~deliver:(mark "b") Qp.Write ~len:4096 ];
  check_int "nothing delivered at post" 0 (List.length !order);
  Clock.advance clock 1_000_000;
  check_int "clock alone delivers nothing" 0 (List.length !order);
  ignore (Qp.poll qp ~max:8 : int list);
  Alcotest.(check (list string)) "poll retires in post order" [ "a"; "b" ]
    (List.rev !order)

let test_qp_window_backpressure () =
  let clock = Clock.create () in
  let qp = Qp.create ~sq_depth:1 ~clock () in
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:4096 ];
  check_int "no stall on empty window" 0 (Qp.window_stalls qp);
  let before = Clock.now clock in
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:4096 ];
  check_int "second post stalled" 1 (Qp.window_stalls qp);
  check_bool "stall advanced the caller's clock" true (Clock.now clock > before);
  check_bool "stall time accounted" true (Qp.window_stall_ns qp > 0);
  check_int "peak outstanding bounded by depth" 1 (Qp.outstanding_peak qp);
  Qp.wait_idle qp;
  let unbounded =
    let c = Clock.create () in
    let q = Qp.create ~clock:c () in
    Qp.post q [ Qp.wqe ~signaled:true Qp.Write ~len:4096 ];
    Qp.post q [ Qp.wqe ~signaled:true Qp.Write ~len:4096 ];
    Qp.wait_idle q;
    Clock.now c
  in
  check_bool "windowed run no faster than unbounded" true
    (Clock.now clock >= unbounded)

let test_qp_selective_signaling () =
  let clock = Clock.create () in
  let qp = Qp.create ~signal_interval:4 ~clock () in
  for _ = 1 to 8 do
    Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ]
  done;
  Clock.advance clock 1_000_000_000;
  check_int "8 requested, every 4th raises a CQE" 2
    (List.length (Qp.poll qp ~max:100));
  check_int "signaled counter matches CQEs" 2 (Qp.signaled qp)

let test_qp_in_flight () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  Qp.post qp
    [
      Qp.wqe Qp.Write ~len:64;
      Qp.wqe Qp.Write ~len:64;
      Qp.wqe ~signaled:true Qp.Write ~len:64;
    ];
  (* Unsignaled WQEs count too: posted minus completed, not CQ depth. *)
  check_int "all posted WQEs in flight" 3 (Qp.in_flight qp);
  Clock.advance clock 1_000_000;
  check_int "none in flight past completion time" 0 (Qp.in_flight qp);
  check_int "signaled one reapable" 1 (List.length (Qp.poll qp ~max:8));
  check_int "still none in flight" 0 (Qp.in_flight qp)

let test_qp_poll_after_time () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Clock.advance clock 1_000_000;
  check_int "one completion" 1 (List.length (Qp.poll qp ~max:8));
  check_int "cq drained" 0 (List.length (Qp.poll qp ~max:8))

let test_qp_unsignaled () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  Qp.post qp [ Qp.wqe Qp.Write ~len:64; Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Clock.advance clock 1_000_000;
  check_int "only last signaled" 1 (List.length (Qp.poll qp ~max:8))

let test_qp_accounting () =
  let clock = Clock.create () in
  let qp = Qp.create ~clock () in
  Qp.post qp [ Qp.wqe Qp.Write ~len:100; Qp.wqe Qp.Read ~len:50 ];
  check_int "payload" 150 (Qp.payload_bytes qp);
  check_int "wire includes headers" (150 + (2 * Cost.default.Cost.header_bytes))
    (Qp.wire_bytes qp)

let test_nic_contention () =
  (* Two QPs on one NIC: the second post waits for the wire. *)
  let nic = Nic.create () in
  let c1 = Clock.create () and c2 = Clock.create () in
  let qp1 = Qp.create ~nic ~clock:c1 () in
  let qp2 = Qp.create ~nic ~clock:c2 () in
  Qp.post qp1 [ Qp.wqe ~signaled:true Qp.Write ~len:1_000_000 ];
  Qp.post qp2 [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
  Qp.wait_idle qp2;
  let solo =
    let c = Clock.create () in
    let qp = Qp.create ~clock:c () in
    Qp.post qp [ Qp.wqe ~signaled:true Qp.Write ~len:64 ];
    Qp.wait_idle qp;
    Clock.now c
  in
  check_bool "contended op slower than solo" true (Clock.now c2 > 2 * solo)

let prop_qp_completions_conserved =
  QCheck.Test.make ~name:"every signaled wqe completes exactly once" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) bool)
    (fun signals ->
      let clock = Clock.create () in
      let qp = Qp.create ~clock () in
      List.iter (fun s -> Qp.post qp [ Qp.wqe ~signaled:s Qp.Write ~len:64 ]) signals;
      Clock.advance clock 1_000_000_000;
      let expected = List.length (List.filter Fun.id signals) in
      List.length (Qp.poll qp ~max:1000) = expected)

(* ------------------------------------------------------------------ *)
(* Rpc *)

let test_rpc_round_trip () =
  let clock = Clock.create () in
  let nic = Nic.create () in
  let rpc = Rpc.create ~service_ns:2_000 ~clock ~nic () in
  let result = Rpc.call rpc ~request_bytes:64 ~response_bytes:256 (fun x -> x * 2) 21 in
  check_int "handler result" 42 result;
  check_int "calls" 1 (Rpc.calls rpc);
  (* two small sends + 2us service: > 7us, < 15us *)
  check_bool "round trip priced" true (Clock.now clock > 7_000 && Clock.now clock < 15_000);
  check_int "total accounted" (Clock.now clock) (Rpc.total_ns rpc)

let test_rpc_outage_blocks_control_path () =
  let clock = Clock.create () in
  let nic = Nic.create () in
  Nic.inject_outage nic ~at:0 ~duration:1_000_000;
  let rpc = Rpc.create ~clock ~nic () in
  ignore (Rpc.call rpc ~request_bytes:8 ~response_bytes:8 Fun.id ());
  check_bool "control path waits out the outage" true (Clock.now clock > 1_000_000)

let qsuite name props = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "kona_rdma"
    [
      ( "cost",
        [
          Alcotest.test_case "calibration" `Quick test_cost_calibration;
          Alcotest.test_case "batching amortizes" `Quick test_cost_batching_amortizes;
          Alcotest.test_case "wire bytes" `Quick test_cost_wire_bytes;
          Alcotest.test_case "memcpy/bitmap" `Quick test_cost_memcpy_and_bitmap;
        ] );
      qsuite "cost-props" [ prop_cost_monotone ];
      ( "qp",
        [
          Alcotest.test_case "delivery + completion" `Quick test_qp_delivery_and_completion;
          Alcotest.test_case "completion-ordered delivery" `Quick
            test_qp_completion_ordered_delivery;
          Alcotest.test_case "window backpressure" `Quick test_qp_window_backpressure;
          Alcotest.test_case "selective signaling" `Quick test_qp_selective_signaling;
          Alcotest.test_case "in-flight accounting" `Quick test_qp_in_flight;
          Alcotest.test_case "poll after time" `Quick test_qp_poll_after_time;
          Alcotest.test_case "unsignaled" `Quick test_qp_unsignaled;
          Alcotest.test_case "accounting" `Quick test_qp_accounting;
          Alcotest.test_case "nic contention" `Quick test_nic_contention;
        ] );
      qsuite "qp-props" [ prop_qp_completions_conserved ];
      ( "rpc",
        [
          Alcotest.test_case "round trip" `Quick test_rpc_round_trip;
          Alcotest.test_case "outage blocks control path" `Quick
            test_rpc_outage_blocks_control_path;
        ] );
    ]
