(* konactl: command-line driver for the Kona reproduction.

     konactl workloads                 list the Table 2 workloads
     konactl amp [-w NAME] [--full]    measure dirty-data amplification
     konactl run -w NAME [--system kona,kona-vm] [--fmem-pages N] [--full]
                 [--metrics-json PATH] [--trace PATH] [--scrub-interval NS]
                 [--verify-checksums]
                                       execute a workload on one or more
                                       runtimes and report time, traffic
                                       and integrity
     konactl stats -w NAME [...]       same runs, telemetry table output
     konactl soak [--episodes N] [--seed S] [--metrics-json PATH]
                                       randomized corruption episodes vs the
                                       shadow-heap oracle; fail loudly on
                                       undetected corruption
     konactl fuzz [--episodes N] [--ops K] [--seed S] [--replay SPEC]
                  [--repro-out PATH] [--metrics-json PATH]
                                       seeded whole-surface scenario fuzzing
                                       against the cross-subsystem invariant
                                       registry; failures shrink to minimal
                                       replayable repro specs (exit 5) *)

open Kona
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Amp = Kona_trace.Amplification
module Window = Kona_trace.Window
module Vm_runtime = Kona_baselines.Vm_runtime
module Backoff = Kona_util.Backoff
module Hub = Kona_telemetry.Hub
module Json = Kona_telemetry.Json
module Snapshot = Kona_telemetry.Snapshot

let scale_of full = if full then Workloads.Full else Workloads.Smoke
let scale_name full = if full then "full" else "smoke"

(* ------------------------------------------------------------------ *)

let cmd_workloads () =
  List.iter
    (fun (s : Workloads.spec) ->
      Fmt.pr "%-22s paper: %.1fGB, amp 4KB %.2f / 2MB %.2f / CL %.2f@."
        s.Workloads.name s.Workloads.paper_mem_gb s.Workloads.paper_amp_4k
        s.Workloads.paper_amp_2m s.Workloads.paper_amp_cl)
    Workloads.all;
  0

(* ------------------------------------------------------------------ *)

let specs_of = function
  | None -> Workloads.all
  | Some name -> (
      match Workloads.find name with
      | spec -> [ spec ]
      | exception Not_found ->
          Fmt.epr "unknown workload %S (try 'konactl workloads')@." name;
          exit 1)

let cmd_amp workload seed full =
  let scale = scale_of full in
  List.iter
    (fun (spec : Workloads.spec) ->
      let amp = Amp.create () in
      let w =
        Window.create ~quantum:(spec.Workloads.quantum scale) ~inner:(Amp.sink amp)
          ~on_boundary:(fun ~window -> Amp.close_window amp ~window)
      in
      let heap =
        Heap.create ~capacity:(spec.Workloads.heap_capacity scale)
          ~sink:(Window.sink w) ()
      in
      spec.Workloads.run scale ~heap ~seed;
      Window.flush w;
      let a = Amp.aggregate ~drop_last:true amp in
      Fmt.pr "%-22s windows=%4d written=%9d  4K=%6.2f  2M=%8.2f  CL=%5.2f@."
        spec.Workloads.name
        (List.length (Amp.windows amp))
        a.Amp.total_written_bytes a.Amp.agg_amp_page a.Amp.agg_amp_huge
        a.Amp.agg_amp_line)
    (specs_of workload);
  0

(* ------------------------------------------------------------------ *)

type run_result = {
  rr_system : string;
  rr_hub : Hub.t;
  rr_elapsed : int;
  rr_stats : (string * int) list;
  rr_footprint : int;
  rr_mismatches : int;
  rr_lost_pages : int;  (** backed pages on a crashed, un-failed-over node *)
  rr_degraded : string option;
}

let parse_fault_spec = function
  | None -> []
  | Some s -> (
      match Kona_faults.Fault_spec.parse s with
      | Ok plan -> plan
      | Error msg ->
          Fmt.epr "bad --fault-spec: %s@." msg;
          exit 1)

(* One retry/backoff policy for every resending layer (QP retransmission,
   RPC resend) across both runtimes — [--retry-max]/[--backoff-base-ns]
   override the shared defaults rather than any per-layer knob. *)
let backoff_of ~retry_max ~backoff_base_ns =
  let c = Backoff.default in
  let c =
    match retry_max with Some n -> Backoff.with_retry_max c n | None -> c
  in
  match backoff_base_ns with
  | Some b -> Backoff.with_base_ns c b
  | None -> c

(* Execute [spec] on one runtime with a fresh rack and its own telemetry
   hub; verifies remote-memory integrity after the final drain.  [faults]
   (kona only) is the injection plan: node crashes trigger failover when
   [replicas > 0], and integrity skips pages lost to un-failed-over
   crashed nodes, reporting them as degradation instead of divergence. *)
let run_one ~(spec : Workloads.spec) ~scale ~seed ~fmem_pages ~replicas
    ~prefetch ~sq_depth ~signal_interval ~faults ~fault_seed ~check_replicas
    ~scrub_interval ~verify_checksums ~backoff ~heartbeat_ns ~lease_ns system =
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let hub = Hub.create () in
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let sink, elapsed, drain, stats, rm, degraded =
    match system with
    | "kona" ->
        let config =
          {
            Runtime.default_config with
            fmem_pages;
            replicas;
            prefetch;
            sq_depth;
            signal_interval;
            faults;
            fault_seed;
            check_replicas;
            scrub_interval_ns = scrub_interval;
            verify_checksums;
            backoff;
            heartbeat_ns;
            lease_ns;
          }
        in
        let rt = Runtime.create ~config ~hub ~controller ~read_local () in
        ( Runtime.sink rt,
          (fun () -> Runtime.elapsed_ns rt),
          (fun () -> Runtime.drain rt),
          (fun () -> Runtime.stats rt),
          Runtime.resource_manager rt,
          fun () -> Runtime.degraded rt )
    | ("kona-vm" | "legoos" | "infiniswap") as sys ->
        let cost = Cost_model.default in
        let profile =
          match sys with
          | "legoos" -> Vm_runtime.legoos_profile cost
          | "infiniswap" -> Vm_runtime.infiniswap_profile cost
          | _ -> Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default
        in
        let config =
          {
            Vm_runtime.default_config with
            cache_pages = fmem_pages;
            sq_depth;
            signal_interval;
            backoff;
          }
        in
        let vm = Vm_runtime.create ~config ~hub ~profile ~controller ~read_local () in
        ( Vm_runtime.sink vm,
          (fun () -> Vm_runtime.elapsed_ns vm),
          (fun () -> Vm_runtime.drain vm),
          (fun () -> Vm_runtime.stats vm),
          Vm_runtime.resource_manager vm,
          fun () -> None )
    | other ->
        Fmt.epr "unknown system %S (kona | kona-vm | legoos | infiniswap)@." other;
        exit 1
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink ()
  in
  heap_ref := Some heap;
  spec.Workloads.run scale ~heap ~seed;
  drain ();
  let mismatches = ref 0 and lost_pages = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      (* skip pages holding mmap'd (poked) input: clean by construction *)
      if base + Units.page_size <= Heap.capacity heap
         && not (Heap.page_poked heap ~page:vpage)
      then begin
        let local = Heap.peek_bytes heap base Units.page_size in
        match
          Memory_node.peek (Rack_controller.node controller ~id:node)
            ~addr:remote_addr ~len:Units.page_size
        with
        | remote -> if local <> remote then incr mismatches
        | exception Memory_node.Crashed _ ->
            (* crashed with no promoted replica: lost, not divergent *)
            incr lost_pages
      end);
  {
    rr_system = system;
    rr_hub = hub;
    rr_elapsed = elapsed ();
    rr_stats = stats ();
    rr_footprint = Heap.used heap;
    rr_mismatches = !mismatches;
    rr_lost_pages = !lost_pages;
    rr_degraded = degraded ();
  }

let systems_of s =
  match
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  with
  | [] ->
      Fmt.epr "no system given (kona | kona-vm | legoos | infiniswap)@.";
      exit 1
  | l -> l

(* "trace.jsonl" -> "trace.kona-vm.jsonl" when several systems share one
   --trace path. *)
let per_system_path path sys ~single =
  if single then path
  else
    match String.rindex_opt path '.' with
    | Some i when i > 0 ->
        String.sub path 0 i ^ "." ^ sys
        ^ String.sub path i (String.length path - i)
    | _ -> path ^ "." ^ sys

let export_results ~(spec : Workloads.spec) ~full ~seed ~metrics_json ~trace
    results =
  (match metrics_json with
  | None -> ()
  | Some path ->
      let docs =
        List.map
          (fun r ->
            Snapshot.document (Hub.snapshot r.rr_hub)
              ~meta:
                [
                  ("system", Json.String r.rr_system);
                  ("workload", Json.String spec.Workloads.name);
                  ("scale", Json.String (scale_name full));
                  ("seed", Json.Int seed);
                  ("elapsed_ns", Json.Int r.rr_elapsed);
                ])
          results
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "kona.telemetry.v1");
            ("workload", Json.String spec.Workloads.name);
            ("systems", Json.List docs);
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "metrics: wrote %s@." path);
  match trace with
  | None -> ()
  | Some path ->
      let single = List.length results = 1 in
      List.iter
        (fun r ->
          let p = per_system_path path r.rr_system ~single in
          let n = Hub.write_trace ~path:p r.rr_hub in
          Fmt.pr "trace: wrote %d events to %s@." n p)
        results

(* Exit status shared by run/stats: 1 on divergence (a real bug), 2 on a
   gracefully degraded run (data lost to an unrecovered fault — reported,
   not raised), 0 otherwise. *)
let report_faults r =
  (match r.rr_degraded with
  | Some reason -> Fmt.pr "degraded: %s@." reason
  | None -> ());
  if r.rr_lost_pages > 0 then
    Fmt.pr "integrity: %d page(s) unreachable on crashed nodes@." r.rr_lost_pages

let exit_status results =
  if List.exists (fun r -> r.rr_mismatches > 0) results then 1
  else if List.exists (fun r -> r.rr_degraded <> None) results then 2
  else 0

let cmd_run workload systems fmem_pages replicas prefetch sq_depth
    signal_interval fault_spec fault_seed check_replicas scrub_interval
    verify_checksums retry_max backoff_base_ns heartbeat_ns lease_ns seed
    metrics_json trace full =
  let scale = scale_of full in
  let spec =
    match specs_of (Some workload) with [ s ] -> s | _ -> assert false
  in
  let faults = parse_fault_spec fault_spec in
  let backoff = backoff_of ~retry_max ~backoff_base_ns in
  let results =
    List.map
      (run_one ~spec ~scale ~seed ~fmem_pages ~replicas ~prefetch ~sq_depth
         ~signal_interval ~faults ~fault_seed ~check_replicas ~scrub_interval
         ~verify_checksums ~backoff ~heartbeat_ns ~lease_ns)
      (systems_of systems)
  in
  List.iter
    (fun r ->
      Fmt.pr "%s on %s: %a virtual time, footprint %a@." spec.Workloads.name
        r.rr_system Units.pp_ns r.rr_elapsed Units.pp_bytes r.rr_footprint;
      List.iter (fun (k, v) -> Fmt.pr "  %-26s %d@." k v) r.rr_stats;
      Fmt.pr "integrity: %s@."
        (if r.rr_mismatches = 0 then "remote memory matches the heap"
         else Printf.sprintf "%d PAGES DIVERGED" r.rr_mismatches);
      report_faults r)
    results;
  export_results ~spec ~full ~seed ~metrics_json ~trace results;
  exit_status results

let cmd_stats workload systems fmem_pages replicas prefetch sq_depth
    signal_interval fault_spec fault_seed check_replicas scrub_interval
    verify_checksums retry_max backoff_base_ns heartbeat_ns lease_ns seed
    metrics_json trace full =
  let scale = scale_of full in
  let spec =
    match specs_of (Some workload) with [ s ] -> s | _ -> assert false
  in
  let faults = parse_fault_spec fault_spec in
  let backoff = backoff_of ~retry_max ~backoff_base_ns in
  let results =
    List.map
      (run_one ~spec ~scale ~seed ~fmem_pages ~replicas ~prefetch ~sq_depth
         ~signal_interval ~faults ~fault_seed ~check_replicas ~scrub_interval
         ~verify_checksums ~backoff ~heartbeat_ns ~lease_ns)
      (systems_of systems)
  in
  List.iter
    (fun r ->
      Fmt.pr "== %s on %s (%s, seed %d): %a ==@." spec.Workloads.name
        r.rr_system (scale_name full) seed Units.pp_ns r.rr_elapsed;
      Fmt.pr "%a@." Snapshot.pp_table (Hub.snapshot r.rr_hub);
      report_faults r)
    results;
  export_results ~spec ~full ~seed ~metrics_json ~trace results;
  exit_status results

(* ------------------------------------------------------------------ *)
(* Chaos soak: N randomized corruption episodes against the shadow-heap
   oracle, driven through the scenario engine (lib/scenario).  Every
   episode draws a crash-free corruption plan (bit flips, torn writes,
   stale reads, duplicated deliveries) from the master seed, renders it
   as a one-line scenario spec whose clauses are armed up front, and
   checks the registry's shadow-heap and integrity-accounting invariants
   plus reproducibility (re-running the same spec yields bit-for-bit
   identical integrity counters).  The kona.soak.v1 report shape is
   unchanged from the pre-scenario harness. *)

module Rng = Kona_util.Rng
module Fault_spec = Kona_faults.Fault_spec
module Scn = Kona_scenario.Spec
module Scn_gen = Kona_scenario.Gen
module Episode = Kona_scenario.Episode
module Invariants = Kona_scenario.Invariants
module Shrink = Kona_scenario.Shrink

(* One crash-free corruption plan: a random non-empty subset of the
   probabilistic kinds.  Node crashes are deliberately excluded:
   re-replication after failover heals corruption outside the detection
   paths this harness is auditing.  (No episode is special-cased;
   detection coverage across a seeded batch is asserted by CI over the
   whole kona.soak.v1 report.) *)
let soak_plan rng =
  let p lo hi = lo +. Rng.float rng (hi -. lo) in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  if Rng.bool rng then add (Printf.sprintf "bit-flip:p=%.4f" (p 0.05 0.3));
  if Rng.bool rng then add (Printf.sprintf "torn-write:p=%.4f" (p 0.05 0.3));
  if Rng.bool rng then add (Printf.sprintf "dup-deliver:p=%.4f" (p 0.05 0.3));
  if Rng.bool rng then add (Printf.sprintf "stale-read:p=%.4f" (p 0.02 0.1));
  if !clauses = [] then add (Printf.sprintf "torn-write:p=%.4f" (p 0.05 0.3));
  String.concat ";" (List.rev !clauses)

(* The soak setup as a scenario: one tenant on 2 x 128 MiB nodes, one
   replica, a small cache (more eviction traffic to corrupt), on-fetch
   verification and a background scrubber — all Scenario defaults — with
   the plan's clauses armed before the replay starts. *)
let soak_spec ~workload ~plan_str ~fault_seed ~seed ~scrub_interval =
  let plan =
    match Fault_spec.parse plan_str with
    | Ok p -> p
    | Error msg ->
        Fmt.epr "internal: bad soak plan %S: %s@." plan_str msg;
        exit 1
  in
  {
    Scn.setup =
      {
        Scn.default_setup with
        Scn.workloads = [ workload ];
        seed;
        fault_seed;
        scrub_ns = scrub_interval;
      };
    ops = List.map (fun c -> Scn.Corrupt c) plan;
  }

let soak_failures (o : Episode.outcome) =
  List.map
    (fun v -> Printf.sprintf "%s: %s" v.Invariants.inv v.Invariants.detail)
    o.Episode.oc_violations
  @
  match o.Episode.oc_aborted with
  | Some a -> [ Printf.sprintf "episode aborted: %s" a ]
  | None -> []

let cmd_soak workload episodes master_seed scrub_interval repro_check
    metrics_json =
  let spec =
    match specs_of (Some workload) with [ s ] -> s | _ -> assert false
  in
  let rng = Rng.create ~seed:master_seed in
  let failed = ref false in
  let docs = ref [] in
  for episode = 0 to episodes - 1 do
    let plan_str = soak_plan rng in
    let fault_seed = Rng.int rng 1_000_000 in
    let seed = Rng.int rng 1_000_000 in
    Fmt.pr "episode %d: plan [%s] fault-seed %d seed %d@." episode plan_str
      fault_seed seed;
    let scenario =
      soak_spec ~workload:spec.Workloads.name ~plan_str ~fault_seed ~seed
        ~scrub_interval
    in
    let o = Episode.execute scenario in
    let failures = soak_failures o in
    List.iter
      (fun (k, v) -> if v <> 0 then Fmt.pr "  %-28s %d@." k v)
      o.Episode.oc_integrity;
    (match o.Episode.oc_degraded with
    | Some r -> Fmt.pr "  degraded (detected, declared): %s@." r
    | None -> ());
    if o.Episode.oc_unrepairable > 0 then
      Fmt.pr "  unrepairable pages excluded from oracle: %d@."
        o.Episode.oc_unrepairable;
    (match failures with
    | [] ->
        Fmt.pr "  PASS: zero shadow-heap divergence, all injections accounted@."
    | fs ->
        failed := true;
        List.iter (fun f -> Fmt.pr "  FAIL: %s@." f) fs);
    if repro_check then begin
      let o2 = Episode.execute scenario in
      if
        o2.Episode.oc_integrity <> o.Episode.oc_integrity
        || o2.Episode.oc_fingerprint <> o.Episode.oc_fingerprint
      then begin
        failed := true;
        Fmt.pr
          "  FAIL: re-run of the same (plan, seed) changed integrity counters@."
      end
      else Fmt.pr "  repro: integrity counters identical across re-run@."
    end;
    docs :=
      Json.Obj
        [
          ("episode", Json.Int episode);
          ("plan", Json.String plan_str);
          ("fault_seed", Json.Int fault_seed);
          ("workload_seed", Json.Int seed);
          ("divergent_pages", Json.Int o.Episode.oc_divergent);
          ("unrepairable_pages", Json.Int o.Episode.oc_unrepairable);
          ("failures", Json.List (List.map (fun f -> Json.String f) failures));
          ( "integrity",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Int v)) o.Episode.oc_integrity)
          );
          ( "injected",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Int v)) o.Episode.oc_injected)
          );
        ]
      :: !docs
  done;
  (match metrics_json with
  | None -> ()
  | Some path ->
      let doc =
        Json.Obj
          [
            ("schema", Json.String "kona.soak.v1");
            ("workload", Json.String spec.Workloads.name);
            ("master_seed", Json.Int master_seed);
            ("passed", Json.Bool (not !failed));
            ("episodes", Json.List (List.rev !docs));
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "soak: wrote %s@." path);
  if !failed then begin
    Fmt.pr "soak: FAILED@.";
    1
  end
  else begin
    Fmt.pr "soak: %d episode(s) passed@." episodes;
    0
  end

(* ------------------------------------------------------------------ *)
(* Autonomous scenario fuzzing (lib/scenario): seeded op sequences over
   the whole public surface — run slices, crashes, link flaps, corruption
   clauses, quota changes, shared-segment publish/map traffic, scrub
   sweeps, node adds/drains, rebalances and migration epochs — checked
   against the cross-subsystem invariant registry at every op boundary
   and at episode end.  Every episode is one replayable spec line;
   failures are delta-debugged to minimal repro specs.  Exit 5 = a named
   invariant was violated; exit 1 = replay fingerprint mismatch. *)

let first_violation_name spec ~check_end =
  match (Episode.execute ~check_end spec).Episode.oc_violations with
  | [] -> None
  | v :: _ -> Some v.Invariants.inv

let cmd_fuzz episodes ops master_seed replay repro_out metrics_json =
  match replay with
  | Some line -> (
      match Scn.parse line with
      | Error msg ->
          Fmt.epr "bad scenario spec: %s@." msg;
          1
      | Ok spec ->
          let o = Episode.execute spec in
          let o2 = Episode.execute spec in
          List.iter
            (fun v ->
              Fmt.pr "violation [%s] %s@." v.Invariants.inv v.Invariants.detail)
            o.Episode.oc_violations;
          (match o.Episode.oc_aborted with
          | Some a -> Fmt.pr "aborted: %s@." a
          | None -> ());
          if
            o.Episode.oc_fingerprint <> o2.Episode.oc_fingerprint
            || o.Episode.oc_integrity <> o2.Episode.oc_integrity
          then begin
            Fmt.pr
              "replay: FAILED — two runs of the same spec diverged (broken \
               determinism)@.";
            1
          end
          else if o.Episode.oc_violations <> [] then begin
            Fmt.pr "replay: reproduced the invariant violation@.";
            5
          end
          else begin
            Fmt.pr "replay: PASS fingerprint %s@." o.Episode.oc_fingerprint;
            0
          end)
  | None ->
      let rng = Rng.create ~seed:master_seed in
      let failed = ref false in
      let docs = ref [] in
      let repro_chan = ref None in
      let write_repro m =
        match repro_out with
        | None -> ()
        | Some path ->
            let oc =
              match !repro_chan with
              | Some oc -> oc
              | None ->
                  let oc = open_out path in
                  repro_chan := Some oc;
                  oc
            in
            output_string oc (m ^ "\n")
      in
      for episode = 0 to episodes - 1 do
        let ep_seed = Rng.int rng 1_000_000 in
        let spec = Scn_gen.generate ~seed:ep_seed ~ops in
        let line = Scn.to_string spec in
        Fmt.pr "episode %d: seed %d@.  %s@." episode ep_seed line;
        let o = Episode.execute spec in
        (match o.Episode.oc_aborted with
        | Some a -> Fmt.pr "  aborted: %s@." a
        | None -> ());
        let repro =
          match o.Episode.oc_violations with
          | [] ->
              Fmt.pr "  PASS fingerprint %s@."
                (match o.Episode.oc_fingerprint with "" -> "-" | f -> f);
              ""
          | vs ->
              failed := true;
              List.iter
                (fun v ->
                  Fmt.pr "  FAIL [%s] %s@." v.Invariants.inv v.Invariants.detail)
                vs;
              (* Boundary-scoped failures shrink against the cheap
                 boundary-only executor; end-scoped ones need the full
                 episode per candidate, so spend fewer attempts. *)
              let boundary_only = o.Episode.oc_result = None in
              let oracle s =
                first_violation_name s ~check_end:(not boundary_only)
              in
              let max_attempts = if boundary_only then 400 else 48 in
              let r = Shrink.run ~max_attempts ~oracle spec in
              let m = Scn.to_string r.Shrink.minimal in
              Fmt.pr "  shrunk to %d op(s) in %d attempt(s):@.  %s@."
                (List.length r.Shrink.minimal.Scn.ops)
                r.Shrink.attempts m;
              write_repro m;
              m
        in
        docs :=
          Json.Obj
            [
              ("episode", Json.Int episode);
              ("seed", Json.Int ep_seed);
              ("spec", Json.String line);
              ("fingerprint", Json.String o.Episode.oc_fingerprint);
              ("passed", Json.Bool (o.Episode.oc_violations = []));
              ( "aborted",
                Json.String (Option.value ~default:"" o.Episode.oc_aborted) );
              ( "violations",
                Json.List
                  (List.map
                     (fun v ->
                       Json.Obj
                         [
                           ("invariant", Json.String v.Invariants.inv);
                           ("detail", Json.String v.Invariants.detail);
                         ])
                     o.Episode.oc_violations) );
              ("repro", Json.String repro);
            ]
          :: !docs
      done;
      (match !repro_chan with
      | Some oc ->
          close_out oc;
          Fmt.pr "fuzz: wrote minimal repro spec(s) to %s@."
            (Option.get repro_out)
      | None -> ());
      (match metrics_json with
      | None -> ()
      | Some path ->
          let doc =
            Json.Obj
              [
                ("schema", Json.String "kona.fuzz.v1");
                ("master_seed", Json.Int master_seed);
                ("ops_per_episode", Json.Int ops);
                ( "invariants",
                  Json.List (List.map (fun n -> Json.String n) Invariants.names)
                );
                ("passed", Json.Bool (not !failed));
                ("episodes", Json.List (List.rev !docs));
              ]
          in
          let oc = open_out path in
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          close_out oc;
          Fmt.pr "fuzz: wrote %s@." path);
      if !failed then begin
        Fmt.pr "fuzz: FAILED (invariant violation)@.";
        5
      end
      else begin
        Fmt.pr "fuzz: %d episode(s), zero invariant violations@." episodes;
        0
      end

(* ------------------------------------------------------------------ *)
(* Multi-tenant rack: N tenant runtimes interleaved over shared memory
   nodes with WFQ'd ingress bandwidth, per-tenant quotas and a
   cross-tenant shared segment (see lib/rack). *)

module Rack = Kona_rack.Rack
module Shm_rpc = Kona_shmem.Shm_rpc

let parse_list ~what ~parse s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map (fun x ->
         try parse x
         with _ ->
           Fmt.epr "bad %s element %S@." what x;
           exit 1)

let nth_cyclic l i default =
  match l with [] -> default | _ -> List.nth l (i mod List.length l)

let cmd_rack tenants_n workloads bw_shares mem_quotas nodes node_cap node_gbps
    shared_pages shared_ops shared_writers shm_rpc_calls quantum policy
    fast_nodes slow_extra_ns hot_threshold migrate_epoch migrate_budget
    migrate_share rack_ops rack_fmem_pages replicas fault_spec fault_seed
    retry_max backoff_base_ns heartbeat_ns lease_ns seed full metrics_json
    repro_check =
  if tenants_n < 1 then begin
    Fmt.epr "--tenants must be >= 1@.";
    exit 1
  end;
  let scale = scale_of full in
  let slugs = parse_list ~what:"workload" ~parse:(fun x -> x) workloads in
  let shares = parse_list ~what:"--bw-share" ~parse:int_of_string bw_shares in
  let quotas =
    match mem_quotas with
    | None -> []
    | Some s -> parse_list ~what:"--mem-quota" ~parse:int_of_string s
  in
  let ops =
    match Kona_rack.Rack_ops.parse rack_ops with
    | Ok ops -> ops
    | Error msg ->
        Fmt.epr "bad --rack-ops: %s@." msg;
        exit 1
  in
  let tenant_cfgs =
    List.init tenants_n (fun i ->
        let slug = nth_cyclic slugs i "kv-uniform" in
        {
          Rack.name = Printf.sprintf "t%d-%s" i slug;
          workload = slug;
          bw_share = nth_cyclic shares i 1;
          mem_quota =
            (match nth_cyclic quotas i 0 with 0 -> None | b -> Some b);
          seed = seed + i;
        })
  in
  let runtime =
    let base = Rack.default_config.Rack.runtime in
    {
      base with
      Runtime.fmem_pages =
        (if rack_fmem_pages > 0 then rack_fmem_pages
         else base.Runtime.fmem_pages);
      backoff = backoff_of ~retry_max ~backoff_base_ns;
      (* honoured on tenant 0 only — one membership authority per rack *)
      heartbeat_ns;
      lease_ns;
    }
  in
  let cfg =
    {
      Rack.scale;
      nodes;
      node_capacity =
        (if node_cap > 0 then node_cap
         else Rack.default_config.Rack.node_capacity);
      node_gbps;
      replicas;
      faults = parse_fault_spec fault_spec;
      fault_seed;
      shared_pages;
      shared_ops;
      shared_writers;
      quantum;
      policy;
      fast_nodes;
      slow_extra_ns;
      hot_threshold;
      migrate_epoch_ns = migrate_epoch;
      migrate_budget;
      migrate_share;
      ops;
      extra_node_slots = 0;
      runtime;
    }
  in
  (* --shm-rpc rides the same engine after replay: the ring's coherent
     line traffic lands on the drained-but-live fabric, so its telemetry
     folds into the run's fingerprints (and the repro re-run's). *)
  let run_once () =
    let e = Rack.start cfg tenant_cfgs in
    while Rack.step e > 0 do
      ()
    done;
    let rpc =
      if shm_rpc_calls > 0 && tenants_n >= 2 then
        Some (Shm_rpc.run e ~client:1 ~server:0 ~calls:shm_rpc_calls ())
      else None
    in
    (Rack.finish e, rpc)
  in
  match run_once () with
  | exception Invalid_argument msg ->
      Fmt.epr "%s (try 'konactl workloads')@." msg;
      1
  | exception Rack_controller.Quota_exceeded q ->
      Fmt.epr
        "quota exceeded: tenant %s requested %a with %a of its %a cap used@."
        q.tenant Units.pp_bytes q.requested Units.pp_bytes q.used
        Units.pp_bytes q.quota;
      3
  | r, rpc ->
      Fmt.pr "rack: %d tenant(s), %d node(s) @ %.2f Gbit/s ingress, %s, %a@."
        tenants_n nodes node_gbps (scale_name full) Units.pp_ns r.Rack.r_elapsed_ns;
      Array.iter
        (fun (t : Rack.tenant_result) ->
          Fmt.pr
            "  %-22s share %d  %a  %d accesses  %a admitted  achieved %.3f \
             Gbit/s  queued %a  inval %d@."
            t.Rack.t_cfg.Rack.name t.Rack.t_cfg.Rack.bw_share Units.pp_ns
            t.Rack.t_elapsed_ns t.Rack.t_accesses Units.pp_bytes
            t.Rack.t_admitted_bytes t.Rack.t_achieved_gbps Units.pp_ns
            t.Rack.t_delay_ns t.Rack.t_invalidations)
        r.Rack.r_tenants;
      Fmt.pr
        "contention: %d/%d admits saturated; shared segment: %d writes, %d \
         reads, %d snoops, %d invalidations@."
        r.Rack.r_saturated_admits r.Rack.r_total_admits r.Rack.r_shared_writes
        r.Rack.r_shared_reads r.Rack.r_snoops r.Rack.r_invalidations_sent;
      if r.Rack.r_owner_changes > 0 then
        Fmt.pr
          "coherence: %d writer handoff(s), %d owner change(s), %d \
           invalidation(s)@."
          r.Rack.r_handoffs r.Rack.r_owner_changes r.Rack.r_coh_invalidations;
      (match rpc with
      | Some s ->
          Fmt.pr
            "shm-rpc: %d call(s) over coherent lines (%d+%d per call)  mean \
             %a/call  max %a  %d handoff(s)@."
            s.Shm_rpc.s_calls s.Shm_rpc.s_req_lines s.Shm_rpc.s_resp_lines
            Units.pp_ns (Shm_rpc.mean_ns s) Units.pp_ns s.Shm_rpc.s_max_ns
            s.Shm_rpc.s_handoffs
      | None -> ());
      Fmt.pr
        "placement: policy %s  %d migration(s) (%a moved, %d declined)  \
         remote-hit %d.%d%%  hot-hit %d.%d%%@."
        r.Rack.r_policy r.Rack.r_migrations Units.pp_bytes r.Rack.r_bytes_moved
        r.Rack.r_failed_moves
        (r.Rack.r_remote_hit_pml / 10)
        (r.Rack.r_remote_hit_pml mod 10)
        (r.Rack.r_hot_hit_pml / 10)
        (r.Rack.r_hot_hit_pml mod 10);
      if r.Rack.r_ops_applied > 0 then
        Fmt.pr "ops: %d applied; drain re-homed %d page(s), %d failure(s)@."
          r.Rack.r_ops_applied r.Rack.r_drained_pages r.Rack.r_drain_failures;
      if r.Rack.r_node_crashes > 0 then
        Fmt.pr "faults: %d node crash(es) handled@." r.Rack.r_node_crashes;
      let mismatches = ref 0 in
      Array.iter
        (fun (t : Rack.tenant_result) ->
          mismatches := !mismatches + t.Rack.t_mismatches;
          if t.Rack.t_mismatches > 0 then
            Fmt.pr "integrity: %s: %d PAGES DIVERGED@." t.Rack.t_cfg.Rack.name
              t.Rack.t_mismatches;
          if t.Rack.t_lost_pages > 0 then
            Fmt.pr "integrity: %s: %d page(s) unreachable on crashed nodes@."
              t.Rack.t_cfg.Rack.name t.Rack.t_lost_pages;
          match t.Rack.t_degraded with
          | Some reason -> Fmt.pr "degraded: %s: %s@." t.Rack.t_cfg.Rack.name reason
          | None -> ())
        r.Rack.r_tenants;
      if !mismatches = 0 then
        Fmt.pr "integrity: remote memory matches every tenant's view@.";
      let repro_failed = ref false in
      if repro_check then begin
        let r2, rpc2 = run_once () in
        let same =
          Array.for_all2
            (fun (a : Rack.tenant_result) (b : Rack.tenant_result) ->
              a.Rack.t_fingerprint = b.Rack.t_fingerprint)
            r.Rack.r_tenants r2.Rack.r_tenants
          && rpc = rpc2
        in
        if same then
          Fmt.pr "repro: per-tenant counters bit-identical across re-run@."
        else begin
          repro_failed := true;
          Fmt.pr "repro: FAIL: re-run changed per-tenant counters@."
        end
      end;
      (match metrics_json with
      | None -> ()
      | Some path ->
          let tenant_doc (t : Rack.tenant_result) =
            Json.Obj
              [
                ("name", Json.String t.Rack.t_cfg.Rack.name);
                ("workload", Json.String t.Rack.t_cfg.Rack.workload);
                ("bw_share", Json.Int t.Rack.t_cfg.Rack.bw_share);
                ( "mem_quota",
                  match t.Rack.t_cfg.Rack.mem_quota with
                  | Some b -> Json.Int b
                  | None -> Json.Null );
                ("seed", Json.Int t.Rack.t_cfg.Rack.seed);
                ("accesses", Json.Int t.Rack.t_accesses);
                ("elapsed_ns", Json.Int t.Rack.t_elapsed_ns);
                ("admitted_bytes", Json.Int t.Rack.t_admitted_bytes);
                ("contended_bytes", Json.Int t.Rack.t_contended_bytes);
                ("delay_ns", Json.Int t.Rack.t_delay_ns);
                ("achieved_gbps", Json.Float t.Rack.t_achieved_gbps);
                ("invalidations", Json.Int t.Rack.t_invalidations);
                ("mismatches", Json.Int t.Rack.t_mismatches);
                ( "degraded",
                  match t.Rack.t_degraded with
                  | Some s -> Json.String s
                  | None -> Json.Null );
              ]
          in
          let doc =
            Json.Obj
              [
                ("schema", Json.String "kona.rack.v1");
                ("scale", Json.String (scale_name full));
                ("seed", Json.Int seed);
                ("nodes", Json.Int nodes);
                ("node_gbps", Json.Float node_gbps);
                ("total_admits", Json.Int r.Rack.r_total_admits);
                ("saturated_admits", Json.Int r.Rack.r_saturated_admits);
                ("snoops", Json.Int r.Rack.r_snoops);
                ("invalidations_sent", Json.Int r.Rack.r_invalidations_sent);
                ("shared_writers", Json.Int shared_writers);
                ("handoffs", Json.Int r.Rack.r_handoffs);
                ("owner_changes", Json.Int r.Rack.r_owner_changes);
                ( "coherence_invalidations",
                  Json.Int r.Rack.r_coh_invalidations );
                ( "shm_rpc",
                  match rpc with
                  | None -> Json.Null
                  | Some s ->
                      Json.Obj
                        [
                          ("calls", Json.Int s.Shm_rpc.s_calls);
                          ("total_ns", Json.Int s.Shm_rpc.s_total_ns);
                          ("mean_ns", Json.Int (Shm_rpc.mean_ns s));
                          ("max_ns", Json.Int s.Shm_rpc.s_max_ns);
                          ("req_lines", Json.Int s.Shm_rpc.s_req_lines);
                          ("resp_lines", Json.Int s.Shm_rpc.s_resp_lines);
                          ("handoffs", Json.Int s.Shm_rpc.s_handoffs);
                          ( "invalidations",
                            Json.Int s.Shm_rpc.s_invalidations );
                        ] );
                ("policy", Json.String r.Rack.r_policy);
                ("migrations", Json.Int r.Rack.r_migrations);
                ("bytes_moved", Json.Int r.Rack.r_bytes_moved);
                ("failed_moves", Json.Int r.Rack.r_failed_moves);
                ("migrator_delay_ns", Json.Int r.Rack.r_migrator_delay_ns);
                ("fetches", Json.Int r.Rack.r_fetches);
                ("fetches_fast", Json.Int r.Rack.r_fetches_fast);
                ("remote_hit_pml", Json.Int r.Rack.r_remote_hit_pml);
                ("hot_hit_pml", Json.Int r.Rack.r_hot_hit_pml);
                ("drained_pages", Json.Int r.Rack.r_drained_pages);
                ("drain_failures", Json.Int r.Rack.r_drain_failures);
                ("ops_applied", Json.Int r.Rack.r_ops_applied);
                ( "tenants",
                  Json.List (Array.to_list (Array.map tenant_doc r.Rack.r_tenants)) );
                ("metrics", Snapshot.to_json r.Rack.r_snapshot);
              ]
          in
          let oc = open_out path in
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          close_out oc;
          Fmt.pr "metrics: wrote %s@." path);
      if !mismatches > 0 || !repro_failed then 1
      else if r.Rack.r_drain_failures > 0 then begin
        Fmt.pr "ops: DRAIN INCOMPLETE: %d page(s) not re-homed@."
          r.Rack.r_drain_failures;
        4
      end
      else if
        Array.exists
          (fun (t : Rack.tenant_result) -> t.Rack.t_degraded <> None)
          r.Rack.r_tenants
      then 2
      else 0

(* ------------------------------------------------------------------ *)

let cmd_record workload out seed full =
  let scale = scale_of full in
  let spec = match specs_of (Some workload) with [ s ] -> s | _ -> assert false in
  let sink, close = Kona_trace.Trace_file.writer ~path:out in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink ()
  in
  spec.Workloads.run scale ~heap ~seed;
  let events = close () in
  Fmt.pr "recorded %d events from %s to %s@." events spec.Workloads.name out;
  0

let cmd_replay input quantum =
  let amp = Amp.create () in
  let fp = Kona_trace.Footprint.create () in
  let inner = Kona_trace.Access.Tap.tee [ Amp.sink amp; Kona_trace.Footprint.sink fp ] in
  let w =
    Window.create ~quantum ~inner ~on_boundary:(fun ~window ->
        Amp.close_window amp ~window;
        Kona_trace.Footprint.close_window fp ~window)
  in
  let events = Kona_trace.Trace_file.iter ~path:input (Window.sink w) in
  Window.flush w;
  let a = Amp.aggregate ~drop_last:true amp in
  Fmt.pr "replayed %d events (%d windows of %d accesses)@." events
    (List.length (Amp.windows amp))
    quantum;
  Fmt.pr "amplification: 4K=%.2f 2M=%.2f CL=%.2f (unique bytes written: %d)@."
    a.Amp.agg_amp_page a.Amp.agg_amp_huge a.Amp.agg_amp_line
    a.Amp.total_written_bytes;
  let cdf = Kona_trace.Footprint.lines_per_page_cdf fp ~kind:Kona_trace.Access.Write in
  if Kona_util.Cdf.count cdf > 0 then
    Fmt.pr "written lines/page: mean %.1f, P(<=8)=%.2f@." (Kona_util.Cdf.mean cdf)
      (Kona_util.Cdf.at cdf 8);
  0

(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_opt =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let workload_req =
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let full = Arg.(value & flag & info [ "full" ] ~doc:"bench-sized run (default: smoke)")

let system =
  Arg.(
    value
    & opt string "kona,kona-vm"
    & info [ "system" ]
        ~doc:"comma-separated subset of kona | kona-vm | legoos | infiniswap")

let fmem_pages =
  Arg.(value & opt int 1024 & info [ "fmem-pages" ] ~doc:"local cache frames")

let replicas =
  Arg.(value & opt int 0 & info [ "replicas" ] ~doc:"eviction replication degree (kona only)")

let prefetch =
  Arg.(value & flag & info [ "prefetch" ] ~doc:"enable stream prefetching (kona only)")

let sq_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "sq-depth" ]
        ~doc:"bound RDMA send queues to $(docv) outstanding WQEs (default: unbounded)"
        ~docv:"N")

let signal_interval =
  Arg.(
    value
    & opt int 1
    & info [ "signal-interval" ]
        ~doc:"selective signaling: raise a completion every $(docv)th WQE on \
              background queue pairs (default 1 = every WQE)"
        ~docv:"N")

let fault_spec =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "inject faults (kona only): ';'-separated clauses of \
           $(b,kind[@time][:key=value,...]).  Kinds: $(b,node-crash@T:id=N), \
           $(b,link-flap@T:dur=D), $(b,partition@T:dur=D,nodes=A|B), \
           $(b,rpc-timeout:p=P), $(b,wqe-drop:p=P), \
           $(b,wqe-delay:p=P,ns=D), $(b,bit-flip:p=P), $(b,torn-write:p=P), \
           $(b,stale-read:p=P), $(b,dup-deliver:p=P).  Times/durations take \
           ns/us/ms/s suffixes, e.g. 'node-crash@2ms:id=1;bit-flip:p=0.1'")

let fault_seed =
  Arg.(
    value
    & opt int 42
    & info [ "fault-seed" ]
        ~doc:"fault-injector RNG seed (same seed + spec => identical faults)")

let check_replicas =
  Arg.(
    value & flag
    & info [ "check-replicas" ]
        ~doc:
          "debug invariant (kona only): verify replicas are byte-identical \
           to their primary after every eviction batch")

let scrub_interval_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "scrub-interval" ] ~docv:"NS"
        ~doc:
          "kona only: background scrub-and-repair sweep period in virtual \
           nanoseconds — walk every backed page's at-rest checksums and \
           repair corrupt lines from live replicas (default: off)")

let verify_checksums =
  Arg.(
    value & flag
    & info [ "verify-checksums" ]
        ~doc:
          "kona only: verify per-cache-line checksums of the remote page on \
           every synchronous demand fetch (stale reads are detected and \
           re-read)")

let retry_max_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "retry-max" ] ~docv:"N"
        ~doc:
          "unified retry budget: cap both QP retransmissions and RPC \
           resends at $(docv) attempts (default: layer defaults, 7 and 5)")

let backoff_base_ns_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "backoff-base-ns" ] ~docv:"NS"
        ~doc:
          "first retry backoff step in virtual nanoseconds, doubled per \
           attempt up to the cap, for every resending layer (default 8000)")

let heartbeat_ns_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "heartbeat-ns" ] ~docv:"NS"
        ~doc:
          "kona only: lease-based membership — memory nodes heartbeat the \
           failure detector every $(docv) virtual nanoseconds, and failover \
           is triggered by lease expiry instead of the synchronous crash \
           hook (default: off, legacy detection)")

let lease_ns_opt =
  Arg.(
    value
    & opt int Runtime.default_config.Runtime.lease_ns
    & info [ "lease-ns" ] ~docv:"NS"
        ~doc:
          "membership lease duration: a node is suspected when its last \
           heartbeat is older than $(docv) and declared dead at twice that \
           age; meaningful only with $(b,--heartbeat-ns) (default 200000)")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"workload RNG seed")

let soak_workload =
  Arg.(
    value
    & opt string "redis-rand"
    & info [ "w"; "workload" ] ~doc:"workload driven during each episode")

let episodes =
  Arg.(
    value & opt int 3
    & info [ "episodes" ] ~doc:"number of randomized corruption episodes")

let soak_scrub_interval =
  Arg.(
    value & opt int 200_000
    & info [ "scrub-interval" ] ~docv:"NS"
        ~doc:"scrub sweep period in virtual nanoseconds")

let repro_check =
  Arg.(
    value & opt bool true
    & info [ "repro-check" ]
        ~doc:
          "re-run every episode with the same (plan, seed) and fail unless \
           the integrity counters are bit-for-bit identical")

let fuzz_episodes =
  Arg.(
    value & opt int 10
    & info [ "episodes" ] ~doc:"number of generated scenario episodes")

let fuzz_ops =
  Arg.(
    value & opt int 12
    & info [ "ops" ] ~doc:"ops per generated episode (before shrinking)")

let fuzz_replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SPEC"
        ~doc:
          "instead of generating, execute this scenario spec twice and fail \
           (exit 1) unless both runs produce bit-identical telemetry \
           fingerprints; a reproduced invariant violation exits 5")

let fuzz_repro_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-out" ] ~docv:"PATH"
        ~doc:
          "write each failing episode's minimal repro spec (one per line, \
           shrunk by delta debugging) for 'konactl fuzz --replay'")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:"export the telemetry snapshot of every system run as one JSON document")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "export the event-trace ring as JSON lines (per-system suffix added \
           when several systems run)")

let out_path =
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~doc:"output trace file")

let in_path =
  Arg.(required & opt (some string) None & info [ "i"; "in" ] ~doc:"input trace file")

let quantum =
  Arg.(value & opt int 20_000 & info [ "quantum" ] ~doc:"window size in accesses")

let rack_tenants =
  Arg.(value & opt int 2 & info [ "tenants" ] ~doc:"number of tenant runtimes")

let rack_workloads =
  Arg.(
    value
    & opt string "kv-uniform,page-rank"
    & info [ "w"; "workloads" ]
        ~doc:
          "comma-separated workload slugs, assigned round-robin to tenants \
           (see 'konactl workloads')")

let rack_bw_shares =
  Arg.(
    value & opt string "1"
    & info [ "bw-share" ]
        ~doc:
          "comma-separated WFQ weights, assigned round-robin: tenant i gets \
           share_i of every saturated node's ingress bandwidth")

let rack_mem_quotas =
  Arg.(
    value
    & opt (some string) None
    & info [ "mem-quota" ]
        ~doc:
          "comma-separated per-tenant slab-allocation caps in bytes (0 = \
           unmetered); exceeding a cap fails with the named Quota_exceeded \
           error (exit 3)")

let rack_nodes =
  Arg.(value & opt int 2 & info [ "nodes" ] ~doc:"memory nodes in the rack")

let rack_node_cap =
  Arg.(
    value & opt int 0
    & info [ "node-cap" ]
        ~doc:
          "per-node capacity in bytes (0 = 128 MiB default); small values \
           create the capacity pressure that spreads allocations across \
           tiers")

let rack_node_gbps =
  Arg.(
    value & opt float 1.0
    & info [ "node-gbps" ]
        ~doc:"per-node ingress link rate in Gbit/s (WFQ wire time)")

let rack_shared_pages =
  Arg.(
    value & opt int 64
    & info [ "shared-pages" ]
        ~doc:"pages in tenant 0's published read-mostly segment (0 = off)")

let rack_shared_ops =
  Arg.(
    value & opt int 256
    & info [ "shared-ops" ]
        ~doc:
          "synthetic shared-segment ops woven into each tenant's replay \
           (tenant 0 writes, the rest read)")

let rack_shared_writers =
  Arg.(
    value & opt int 1
    & info [ "shared-writers" ]
        ~doc:
          "tenants allowed to write the shared segment (woven op k's \
           writer is tenant k mod N); > 1 routes shared traffic through \
           the per-line MSI directory with writer handoff and RFO \
           invalidations priced through the contended links")

let rack_shm_rpc =
  Arg.(
    value
    & opt ~vopt:64 int 0
    & info [ "shm-rpc" ]
        ~doc:
          "after replay, run $(docv) shared-memory RPC calls between \
           tenant 1 (client) and tenant 0 (server) over coherent lines of \
           the shared segment (head/tail doorbell lines ping-pong \
           ownership); 0 = off, bare flag = 64 calls"
        ~docv:"CALLS")

let rack_quantum =
  Arg.(
    value & opt int 256
    & info [ "quantum" ] ~doc:"accesses per tenant scheduling slice")

let rack_repro_check =
  Arg.(
    value & flag
    & info [ "repro-check" ]
        ~doc:
          "run the rack twice with the same seeds and fail unless every \
           tenant's counter snapshot is bit-identical")

let rack_policy =
  Arg.(
    value & opt string "first-fit"
    & info [ "policy" ]
        ~doc:
          "placement policy: first-fit (static round-robin, no migration) | \
           heat (hot pages migrate to the fast tier) | centralized \
           (MIND-style directory: least-loaded placement + capacity \
           rebalancing)")

let rack_fast_nodes =
  Arg.(
    value & opt int 1
    & info [ "fast-nodes" ]
        ~doc:"nodes 0..N-1 form the low-latency tier the heat policy targets")

let rack_slow_extra_ns =
  Arg.(
    value & opt int 2000
    & info [ "slow-extra-ns" ]
        ~doc:
          "fixed fabric penalty (ns) added to every message bound for a \
           slow-tier node; 0 disables tiering")

let rack_hot_threshold =
  Arg.(
    value & opt int 2
    & info [ "hot-threshold" ]
        ~doc:
          "decayed heat at/above which a page counts hot (>= 1); fetches \
           add 2, evictions 1, and heat halves every migrate-epoch, so 2 \
           means 'fetched again within the current epoch'")

let rack_migrate_epoch =
  Arg.(
    value & opt int 1_000_000
    & info [ "migrate-epoch-ns" ]
        ~doc:"heat-decay and background-migrator epoch, virtual ns")

let rack_migrate_budget =
  Arg.(
    value & opt int 32
    & info [ "migrate-budget" ] ~doc:"max page moves per migrator epoch")

let rack_migrate_share =
  Arg.(
    value & opt int 1
    & info [ "migrate-share" ]
        ~doc:
          "WFQ weight of migration traffic at every node (it contends with \
           tenants like any other sender)")

let rack_ops_spec =
  Arg.(
    value & opt string ""
    & info [ "rack-ops" ]
        ~doc:
          "scheduled rack operations, e.g. \
           'add@3ms:cap=67108864;drain@5ms:id=1;rebalance@7ms'; drain \
           failures exit 4")

let rack_fmem_pages =
  Arg.(
    value & opt int 0
    & info [ "fmem-pages" ]
        ~doc:
          "per-tenant local cache frames (0 = runtime default); small \
           values thrash FMem and generate the fetch traffic placement \
           feeds on")

let cmds =
  [
    Cmd.v (Cmd.info "workloads" ~doc:"list Table 2 workloads")
      Term.(const cmd_workloads $ const ());
    Cmd.v (Cmd.info "record" ~doc:"record a workload's access trace to a file")
      Term.(const cmd_record $ workload_req $ out_path $ seed $ full);
    Cmd.v (Cmd.info "replay" ~doc:"replay a trace file through the analyses")
      Term.(const cmd_replay $ in_path $ quantum);
    Cmd.v (Cmd.info "amp" ~doc:"dirty-data amplification (Table 2)")
      Term.(const cmd_amp $ workload_opt $ seed $ full);
    Cmd.v (Cmd.info "run" ~doc:"run a workload on remote-memory runtimes")
      Term.(
        const cmd_run $ workload_req $ system $ fmem_pages $ replicas $ prefetch
        $ sq_depth $ signal_interval $ fault_spec $ fault_seed $ check_replicas
        $ scrub_interval_opt $ verify_checksums $ retry_max_opt
        $ backoff_base_ns_opt $ heartbeat_ns_opt $ lease_ns_opt $ seed
        $ metrics_json $ trace_out $ full);
    Cmd.v
      (Cmd.info "stats"
         ~doc:"run a workload and print the full telemetry table per system")
      Term.(
        const cmd_stats $ workload_req $ system $ fmem_pages $ replicas
        $ prefetch $ sq_depth $ signal_interval $ fault_spec $ fault_seed
        $ check_replicas $ scrub_interval_opt $ verify_checksums $ retry_max_opt
        $ backoff_base_ns_opt $ heartbeat_ns_opt $ lease_ns_opt $ seed
        $ metrics_json $ trace_out $ full);
    Cmd.v
      (Cmd.info "rack"
         ~doc:
           "multi-tenant rack simulation: interleave N tenant runtimes over \
            shared memory nodes with weighted-fair ingress bandwidth, \
            per-tenant memory quotas and a cross-tenant shared segment")
      Term.(
        const cmd_rack $ rack_tenants $ rack_workloads $ rack_bw_shares
        $ rack_mem_quotas $ rack_nodes $ rack_node_cap $ rack_node_gbps
        $ rack_shared_pages $ rack_shared_ops $ rack_shared_writers
        $ rack_shm_rpc $ rack_quantum $ rack_policy
        $ rack_fast_nodes $ rack_slow_extra_ns $ rack_hot_threshold
        $ rack_migrate_epoch $ rack_migrate_budget $ rack_migrate_share
        $ rack_ops_spec $ rack_fmem_pages $ replicas $ fault_spec
        $ fault_seed $ retry_max_opt $ backoff_base_ns_opt $ heartbeat_ns_opt
        $ lease_ns_opt $ seed $ full $ metrics_json $ rack_repro_check);
    Cmd.v
      (Cmd.info "soak"
         ~doc:
           "chaos soak: randomized corruption episodes against the \
            shadow-heap divergence oracle; fails on any undetected \
            corruption or accounting gap")
      Term.(
        const cmd_soak $ soak_workload $ episodes $ seed $ soak_scrub_interval
        $ repro_check $ metrics_json);
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "autonomous scenario fuzzing: seeded op sequences over the whole \
            public surface (run slices, crashes, flaps, corruption, quotas, \
            shared segments, scrubs, rack ops), checked against the \
            cross-subsystem invariant registry; failing episodes are \
            delta-debugged to minimal replayable repro specs (exit 5 on \
            violation, exit 1 on replay mismatch)")
      Term.(
        const cmd_fuzz $ fuzz_episodes $ fuzz_ops $ seed $ fuzz_replay
        $ fuzz_repro_out $ metrics_json);
  ]

let () =
  exit (Cmd.eval' (Cmd.group (Cmd.info "konactl" ~doc:"Kona reproduction driver") cmds))
