(* konactl: command-line driver for the Kona reproduction.

     konactl workloads                 list the Table 2 workloads
     konactl amp [-w NAME] [--full]    measure dirty-data amplification
     konactl run -w NAME [--system kona|kona-vm] [--fmem-pages N] [--full]
                                       execute a workload on a runtime and
                                       report time, traffic and integrity *)

open Kona
module Workloads = Kona_workloads.Workloads
module Heap = Kona_workloads.Heap
module Units = Kona_util.Units
module Amp = Kona_trace.Amplification
module Window = Kona_trace.Window
module Vm_runtime = Kona_baselines.Vm_runtime

let scale_of full = if full then Workloads.Full else Workloads.Smoke

(* ------------------------------------------------------------------ *)

let cmd_workloads () =
  List.iter
    (fun (s : Workloads.spec) ->
      Fmt.pr "%-22s paper: %.1fGB, amp 4KB %.2f / 2MB %.2f / CL %.2f@."
        s.Workloads.name s.Workloads.paper_mem_gb s.Workloads.paper_amp_4k
        s.Workloads.paper_amp_2m s.Workloads.paper_amp_cl)
    Workloads.all;
  0

(* ------------------------------------------------------------------ *)

let specs_of = function
  | None -> Workloads.all
  | Some name -> (
      match Workloads.find name with
      | spec -> [ spec ]
      | exception Not_found ->
          Fmt.epr "unknown workload %S (try 'konactl workloads')@." name;
          exit 1)

let cmd_amp workload full =
  let scale = scale_of full in
  List.iter
    (fun (spec : Workloads.spec) ->
      let amp = Amp.create () in
      let w =
        Window.create ~quantum:(spec.Workloads.quantum scale) ~inner:(Amp.sink amp)
          ~on_boundary:(fun ~window -> Amp.close_window amp ~window)
      in
      let heap =
        Heap.create ~capacity:(spec.Workloads.heap_capacity scale)
          ~sink:(Window.sink w) ()
      in
      spec.Workloads.run scale ~heap ~seed:42;
      Window.flush w;
      let a = Amp.aggregate ~drop_last:true amp in
      Fmt.pr "%-22s windows=%4d written=%9d  4K=%6.2f  2M=%8.2f  CL=%5.2f@."
        spec.Workloads.name
        (List.length (Amp.windows amp))
        a.Amp.total_written_bytes a.Amp.agg_amp_page a.Amp.agg_amp_huge
        a.Amp.agg_amp_line)
    (specs_of workload);
  0

(* ------------------------------------------------------------------ *)

let cmd_run workload system fmem_pages replicas prefetch full =
  let scale = scale_of full in
  let spec =
    match specs_of (Some workload) with [ s ] -> s | _ -> assert false
  in
  let controller = Rack_controller.create ~slab_size:(Units.mib 1) () in
  Rack_controller.register_node controller
    (Memory_node.create ~id:0 ~capacity:(Units.mib 128));
  Rack_controller.register_node controller
    (Memory_node.create ~id:1 ~capacity:(Units.mib 128));
  let heap_ref = ref None in
  let read_local ~addr ~len = Heap.peek_bytes (Option.get !heap_ref) addr len in
  let sink, elapsed, drain, stats, rm =
    match system with
    | "kona" ->
        let config = { Runtime.default_config with fmem_pages; replicas; prefetch } in
        let rt = Runtime.create ~config ~controller ~read_local () in
        ( Runtime.sink rt,
          (fun () -> Runtime.elapsed_ns rt),
          (fun () -> Runtime.drain rt),
          (fun () -> Runtime.stats rt),
          Runtime.resource_manager rt )
    | ("kona-vm" | "legoos" | "infiniswap") as sys ->
        let cost = Cost_model.default in
        let profile =
          match sys with
          | "legoos" -> Vm_runtime.legoos_profile cost
          | "infiniswap" -> Vm_runtime.infiniswap_profile cost
          | _ -> Vm_runtime.kona_vm_profile cost Kona_rdma.Cost.default
        in
        let config = { Vm_runtime.default_config with cache_pages = fmem_pages } in
        let vm = Vm_runtime.create ~config ~profile ~controller ~read_local () in
        ( Vm_runtime.sink vm,
          (fun () -> Vm_runtime.elapsed_ns vm),
          (fun () -> Vm_runtime.drain vm),
          (fun () -> Vm_runtime.stats vm),
          Vm_runtime.resource_manager vm )
    | other ->
        Fmt.epr "unknown system %S (kona | kona-vm | legoos | infiniswap)@." other;
        exit 1
  in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink ()
  in
  heap_ref := Some heap;
  spec.Workloads.run scale ~heap ~seed:42;
  drain ();
  Fmt.pr "%s on %s: %a virtual time, footprint %a@." spec.Workloads.name system
    Units.pp_ns (elapsed ()) Units.pp_bytes (Heap.used heap);
  List.iter (fun (k, v) -> Fmt.pr "  %-26s %d@." k v) (stats ());
  (* integrity *)
  let mismatches = ref 0 in
  Resource_manager.iter_backed_pages rm (fun ~vpage ~node ~remote_addr ->
      let base = vpage * Units.page_size in
      (* skip pages holding mmap'd (poked) input: clean by construction *)
      if base + Units.page_size <= Heap.capacity heap
         && not (Heap.page_poked heap ~page:vpage)
      then begin
        let local = Heap.peek_bytes heap base Units.page_size in
        let remote =
          Memory_node.peek (Rack_controller.node controller ~id:node) ~addr:remote_addr
            ~len:Units.page_size
        in
        if local <> remote then incr mismatches
      end);
  Fmt.pr "integrity: %s@."
    (if !mismatches = 0 then "remote memory matches the heap"
     else Printf.sprintf "%d PAGES DIVERGED" !mismatches);
  if !mismatches > 0 then 1 else 0

(* ------------------------------------------------------------------ *)

let cmd_record workload out full =
  let scale = scale_of full in
  let spec = match specs_of (Some workload) with [ s ] -> s | _ -> assert false in
  let sink, close = Kona_trace.Trace_file.writer ~path:out in
  let heap =
    Heap.create ~capacity:(spec.Workloads.heap_capacity scale) ~sink ()
  in
  spec.Workloads.run scale ~heap ~seed:42;
  let events = close () in
  Fmt.pr "recorded %d events from %s to %s@." events spec.Workloads.name out;
  0

let cmd_replay input quantum =
  let amp = Amp.create () in
  let fp = Kona_trace.Footprint.create () in
  let inner = Kona_trace.Access.Tap.tee [ Amp.sink amp; Kona_trace.Footprint.sink fp ] in
  let w =
    Window.create ~quantum ~inner ~on_boundary:(fun ~window ->
        Amp.close_window amp ~window;
        Kona_trace.Footprint.close_window fp ~window)
  in
  let events = Kona_trace.Trace_file.iter ~path:input (Window.sink w) in
  Window.flush w;
  let a = Amp.aggregate ~drop_last:true amp in
  Fmt.pr "replayed %d events (%d windows of %d accesses)@." events
    (List.length (Amp.windows amp))
    quantum;
  Fmt.pr "amplification: 4K=%.2f 2M=%.2f CL=%.2f (unique bytes written: %d)@."
    a.Amp.agg_amp_page a.Amp.agg_amp_huge a.Amp.agg_amp_line
    a.Amp.total_written_bytes;
  let cdf = Kona_trace.Footprint.lines_per_page_cdf fp ~kind:Kona_trace.Access.Write in
  if Kona_util.Cdf.count cdf > 0 then
    Fmt.pr "written lines/page: mean %.1f, P(<=8)=%.2f@." (Kona_util.Cdf.mean cdf)
      (Kona_util.Cdf.at cdf 8);
  0

(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_opt =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let workload_req =
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let full = Arg.(value & flag & info [ "full" ] ~doc:"bench-sized run (default: smoke)")

let system =
  Arg.(
    value & opt string "kona"
    & info [ "system" ] ~doc:"kona | kona-vm | legoos | infiniswap")

let fmem_pages =
  Arg.(value & opt int 1024 & info [ "fmem-pages" ] ~doc:"local cache frames")

let replicas =
  Arg.(value & opt int 0 & info [ "replicas" ] ~doc:"eviction replication degree (kona only)")

let prefetch =
  Arg.(value & flag & info [ "prefetch" ] ~doc:"enable stream prefetching (kona only)")

let out_path =
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~doc:"output trace file")

let in_path =
  Arg.(required & opt (some string) None & info [ "i"; "in" ] ~doc:"input trace file")

let quantum =
  Arg.(value & opt int 20_000 & info [ "quantum" ] ~doc:"window size in accesses")

let cmds =
  [
    Cmd.v (Cmd.info "workloads" ~doc:"list Table 2 workloads")
      Term.(const cmd_workloads $ const ());
    Cmd.v (Cmd.info "record" ~doc:"record a workload's access trace to a file")
      Term.(const cmd_record $ workload_req $ out_path $ full);
    Cmd.v (Cmd.info "replay" ~doc:"replay a trace file through the analyses")
      Term.(const cmd_replay $ in_path $ quantum);
    Cmd.v (Cmd.info "amp" ~doc:"dirty-data amplification (Table 2)")
      Term.(const cmd_amp $ workload_opt $ full);
    Cmd.v (Cmd.info "run" ~doc:"run a workload on a remote-memory runtime")
      Term.(const cmd_run $ workload_req $ system $ fmem_pages $ replicas $ prefetch $ full);
  ]

let () =
  exit (Cmd.eval' (Cmd.group (Cmd.info "konactl" ~doc:"Kona reproduction driver") cmds))
