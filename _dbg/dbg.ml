open Kona_cachesim
let () =
  let c = Cache.create ~name:"t" ~size:512 ~assoc:2 ~block:64 in
  (match Cache.access c ~addr:0 ~write:false with
   | Cache.Hit -> print_endline "a0: hit"
   | Cache.Miss None -> print_endline "a0: miss none"
   | Cache.Miss (Some v) -> Printf.printf "a0: miss victim %d dirty=%b\n" v.Cache.block_addr v.Cache.dirty);
  (match Cache.access c ~addr:32 ~write:false with
   | Cache.Hit -> print_endline "a32: hit"
   | Cache.Miss None -> print_endline "a32: miss none"
   | Cache.Miss (Some v) -> Printf.printf "a32: miss victim %d dirty=%b\n" v.Cache.block_addr v.Cache.dirty);
  Printf.printf "probe 0: %b\n" (Cache.probe c ~addr:0)
